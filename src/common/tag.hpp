#ifndef PUMI_COMMON_TAG_HPP
#define PUMI_COMMON_TAG_HPP

/// \file tag.hpp
/// \brief Tag component: attach arbitrary typed user data to arbitrary items.
///
/// The paper (Sec. II) lists Tag as one of the three common utilities shared
/// by the geometric model and the mesh, following the ITAPS/MOAB tagging
/// conventions: a tag is created once with a name, element type and component
/// count, then values may be set/read/removed per item. This template is
/// instantiated with the mesh entity handle and the model entity handle.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeindex>
#include <unordered_map>
#include <vector>

namespace common {

/// Type-erased base for one tag's data; also the opaque tag identity handed
/// to users (as `Tag`, a raw non-owning pointer).
template <typename Handle>
class TagBase {
 public:
  TagBase(std::string name, std::size_t components, std::type_index type)
      : name_(std::move(name)), components_(components), type_(type) {}
  virtual ~TagBase() = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t components() const { return components_; }
  [[nodiscard]] std::type_index type() const { return type_; }

  /// True when the item carries a value under this tag.
  [[nodiscard]] virtual bool has(const Handle& item) const = 0;
  /// Remove the item's value (no-op when unset).
  virtual void remove(const Handle& item) = 0;
  /// Copy the value (if any) from one item to another.
  virtual void copy(const Handle& from, const Handle& to) = 0;
  /// Number of items carrying a value.
  [[nodiscard]] virtual std::size_t count() const = 0;
  /// Deep copy of this tag and every value it holds (registry snapshots).
  /// The clone keeps this tag's version(): content and version travel
  /// together, so a restored snapshot stays consistent with any ledger
  /// keyed on (name, version).
  [[nodiscard]] virtual std::unique_ptr<TagBase<Handle>> clone() const = 0;

  /// Item handles currently carrying a value, in container order (callers
  /// needing determinism must sort by their own handle key).
  [[nodiscard]] virtual std::vector<Handle> items() const = 0;
  /// Raw bytes of one item's payload — empty when the item is unset or the
  /// value type is not trivially copyable. For byte-level integrity
  /// hashing and memory-fault injection only: writes through the mutable
  /// view deliberately do NOT bump version() (they model corruption, not
  /// legitimate updates).
  [[nodiscard]] virtual std::span<const std::byte> valueBytes(
      const Handle& item) const = 0;
  [[nodiscard]] virtual std::span<std::byte> valueBytes(
      const Handle& item) = 0;

  /// Monotone mutation counter: bumped by every value mutation (set,
  /// effective remove/copy), seeded from a process-wide monotone source so
  /// a destroyed-and-recreated tag of the same name never reuses a
  /// (name, version) pair. Integrity ledgers key tag sections on it to
  /// re-hash lazily: an unchanged version proves no *legitimate* write
  /// happened since the last observation.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  void bumpVersion() { version_ = nextVersion(); }

 protected:
  static std::uint64_t nextVersion() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t version_ = nextVersion();

 private:
  std::string name_;
  std::size_t components_;
  std::type_index type_;
};

template <typename Handle, typename T, typename Hash>
class TagData final : public TagBase<Handle> {
 public:
  using TagBase<Handle>::TagBase;

  [[nodiscard]] bool has(const Handle& item) const override {
    return values.count(item) > 0;
  }
  void remove(const Handle& item) override {
    if (values.erase(item) > 0) this->bumpVersion();
  }
  void copy(const Handle& from, const Handle& to) override {
    auto it = values.find(from);
    if (it == values.end()) return;
    std::vector<T> value = it->second;  // copy first: operator[] may rehash
    values[to] = std::move(value);
    this->bumpVersion();
  }
  [[nodiscard]] std::size_t count() const override { return values.size(); }
  [[nodiscard]] std::unique_ptr<TagBase<Handle>> clone() const override {
    auto out = std::make_unique<TagData<Handle, T, Hash>>(
        this->name(), this->components(), this->type());
    out->values = values;
    out->version_ = this->version_;
    return out;
  }

  [[nodiscard]] std::vector<Handle> items() const override {
    std::vector<Handle> out;
    out.reserve(values.size());
    for (const auto& kv : values) out.push_back(kv.first);
    return out;
  }
  [[nodiscard]] std::span<const std::byte> valueBytes(
      const Handle& item) const override {
    if constexpr (std::is_trivially_copyable_v<T>) {
      auto it = values.find(item);
      if (it == values.end()) return {};
      return {reinterpret_cast<const std::byte*>(it->second.data()),
              it->second.size() * sizeof(T)};
    } else {
      (void)item;
      return {};
    }
  }
  [[nodiscard]] std::span<std::byte> valueBytes(const Handle& item) override {
    if constexpr (std::is_trivially_copyable_v<T>) {
      auto it = values.find(item);
      if (it == values.end()) return {};
      return {reinterpret_cast<std::byte*>(it->second.data()),
              it->second.size() * sizeof(T)};
    } else {
      (void)item;
      return {};
    }
  }

  std::unordered_map<Handle, std::vector<T>, Hash> values;
};

/// Registry of named tags over items of type Handle.
template <typename Handle, typename Hash = std::hash<Handle>>
class TagRegistry {
 public:
  using Tag = TagBase<Handle>*;

  TagRegistry() = default;
  TagRegistry(TagRegistry&&) noexcept = default;
  TagRegistry& operator=(TagRegistry&&) noexcept = default;
  /// Deep copy: every tag and all its values are cloned. Tag handles held
  /// by callers keep pointing at the *source* registry — re-find() by name
  /// against the copy (the transactional-rollback caveat in PartedMesh).
  TagRegistry(const TagRegistry& other) { copyFrom(other); }
  TagRegistry& operator=(const TagRegistry& other) {
    if (this != &other) {
      tags_.clear();
      copyFrom(other);
    }
    return *this;
  }

  /// Create a tag; throws if the name is already taken.
  template <typename T>
  Tag create(const std::string& name, std::size_t components = 1) {
    if (find(name) != nullptr)
      throw std::invalid_argument("tag already exists: " + name);
    auto data = std::make_unique<TagData<Handle, T, Hash>>(
        name, components, std::type_index(typeid(T)));
    Tag tag = data.get();
    tags_.push_back(std::move(data));
    return tag;
  }

  /// Find a tag by name; nullptr when absent.
  [[nodiscard]] Tag find(const std::string& name) const {
    for (const auto& t : tags_)
      if (t->name() == name) return t.get();
    return nullptr;
  }

  /// Destroy a tag and all its values.
  void destroy(Tag tag) {
    for (auto it = tags_.begin(); it != tags_.end(); ++it) {
      if (it->get() == tag) {
        tags_.erase(it);
        return;
      }
    }
    throw std::invalid_argument("destroy of unknown tag");
  }

  [[nodiscard]] std::vector<Tag> list() const {
    std::vector<Tag> out;
    out.reserve(tags_.size());
    for (const auto& t : tags_) out.push_back(t.get());
    return out;
  }

  /// Set the full component vector on an item.
  template <typename T>
  void set(Tag tag, const Handle& item, std::vector<T> value) {
    auto& data = cast<T>(tag);
    assert(value.size() == tag->components());
    data.values[item] = std::move(value);
    tag->bumpVersion();
  }

  /// Convenience for single-component tags.
  template <typename T>
  void setScalar(Tag tag, const Handle& item, const T& value) {
    set<T>(tag, item, std::vector<T>{value});
  }

  template <typename T>
  [[nodiscard]] const std::vector<T>& get(Tag tag, const Handle& item) const {
    const auto& data = cast<T>(tag);
    auto it = data.values.find(item);
    if (it == data.values.end())
      throw std::out_of_range("tag value not set: " + tag->name());
    return it->second;
  }

  template <typename T>
  [[nodiscard]] T getScalar(Tag tag, const Handle& item) const {
    return get<T>(tag, item).at(0);
  }

  [[nodiscard]] static bool has(Tag tag, const Handle& item) {
    return tag->has(item);
  }

  /// Remove a value from one item (no-op if unset).
  void remove(Tag tag, const Handle& item) { tag->remove(item); }

  /// Drop all values attached to one item across all tags (item deletion).
  void removeAll(const Handle& item) {
    for (const auto& t : tags_) t->remove(item);
  }

  /// Copy all tag values from one item to another (entity duplication).
  void copyAll(const Handle& from, const Handle& to) {
    for (const auto& t : tags_) t->copy(from, to);
  }

 private:
  template <typename T>
  TagData<Handle, T, Hash>& cast(Tag tag) {
    auto* typed = dynamic_cast<TagData<Handle, T, Hash>*>(tag);
    if (typed == nullptr)
      throw std::invalid_argument("tag type mismatch: " + tag->name());
    return *typed;
  }
  template <typename T>
  const TagData<Handle, T, Hash>& cast(Tag tag) const {
    const auto* typed = dynamic_cast<const TagData<Handle, T, Hash>*>(tag);
    if (typed == nullptr)
      throw std::invalid_argument("tag type mismatch: " + tag->name());
    return *typed;
  }

  void copyFrom(const TagRegistry& other) {
    tags_.reserve(other.tags_.size());
    for (const auto& t : other.tags_) tags_.push_back(t->clone());
  }

  std::vector<std::unique_ptr<TagBase<Handle>>> tags_;
};

}  // namespace common

#endif  // PUMI_COMMON_TAG_HPP
