#ifndef PUMI_COMMON_VEC_HPP
#define PUMI_COMMON_VEC_HPP

/// \file vec.hpp
/// \brief 3D vector math used by geometry, meshing and partitioning.

#include <array>
#include <cmath>
#include <ostream>

namespace common {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }
  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
  }
};

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline double norm(const Vec3& v) { return std::sqrt(dot(v, v)); }
constexpr double norm2(const Vec3& v) { return dot(v, v); }

inline Vec3 normalized(const Vec3& v) {
  const double n = norm(v);
  return n > 0.0 ? v / n : Vec3{};
}

inline double distance(const Vec3& a, const Vec3& b) { return norm(a - b); }

/// Component-wise min / max (bounding-box building blocks).
constexpr Vec3 min(const Vec3& a, const Vec3& b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
          a.z < b.z ? a.z : b.z};
}
constexpr Vec3 max(const Vec3& a, const Vec3& b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
          a.z > b.z ? a.z : b.z};
}

/// Axis-aligned bounding box.
struct Box3 {
  Vec3 lo{1e300, 1e300, 1e300};
  Vec3 hi{-1e300, -1e300, -1e300};

  void include(const Vec3& p) {
    lo = common::min(lo, p);
    hi = common::max(hi, p);
  }
  [[nodiscard]] Vec3 center() const { return (lo + hi) * 0.5; }
  [[nodiscard]] Vec3 extent() const { return hi - lo; }
  [[nodiscard]] bool contains(const Vec3& p, double tol = 0.0) const {
    return p.x >= lo.x - tol && p.x <= hi.x + tol && p.y >= lo.y - tol &&
           p.y <= hi.y + tol && p.z >= lo.z - tol && p.z <= hi.z + tol;
  }
  /// Longest axis index: 0=x, 1=y, 2=z.
  [[nodiscard]] int longestAxis() const {
    const Vec3 e = extent();
    if (e.x >= e.y && e.x >= e.z) return 0;
    return e.y >= e.z ? 1 : 2;
  }
};

}  // namespace common

#endif  // PUMI_COMMON_VEC_HPP
