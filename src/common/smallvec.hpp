#ifndef PUMI_COMMON_SMALLVEC_HPP
#define PUMI_COMMON_SMALLVEC_HPP

/// \file smallvec.hpp
/// \brief Small-buffer vector for upward adjacency lists.
///
/// Upward adjacencies in a tetrahedral mesh are short (a face bounds at most
/// two regions; an edge bounds ~5 faces on average), but there are millions
/// of them. Storing each as a std::vector costs a heap block per entity;
/// SmallVec keeps up to N elements inline and only spills to the heap for
/// the rare long lists. Restricted to trivially copyable element types.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace common {

template <typename T, std::uint32_t N = 4>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec requires trivially copyable elements");

 public:
  SmallVec() = default;
  ~SmallVec() { release(); }

  SmallVec(const SmallVec& o) { copyFrom(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      release();
      copyFrom(o);
    }
    return *this;
  }
  SmallVec(SmallVec&& o) noexcept { moveFrom(std::move(o)); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      release();
      moveFrom(std::move(o));
    }
    return *this;
  }

  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T* data() { return heap_ ? heap_ : inline_; }
  const T* data() const { return heap_ ? heap_ : inline_; }

  T& operator[](std::uint32_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::uint32_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void push_back(const T& v) {
    if (size_ == capacity()) grow();
    data()[size_++] = v;
  }

  /// Remove the first occurrence of v; returns whether it was present.
  /// Order is not preserved (back-swap removal).
  bool eraseValue(const T& v) {
    T* p = data();
    for (std::uint32_t i = 0; i < size_; ++i) {
      if (p[i] == v) {
        p[i] = p[size_ - 1];
        --size_;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool contains(const T& v) const {
    const T* p = data();
    for (std::uint32_t i = 0; i < size_; ++i)
      if (p[i] == v) return true;
    return false;
  }

  void clear() { size_ = 0; }

 private:
  [[nodiscard]] std::uint32_t capacity() const {
    return heap_ ? heap_capacity_ : N;
  }
  void grow() {
    const std::uint32_t new_cap = capacity() * 2;
    T* bigger = new T[new_cap];
    std::memcpy(bigger, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = bigger;
    heap_capacity_ = new_cap;
  }
  void release() {
    delete[] heap_;
    heap_ = nullptr;
    heap_capacity_ = 0;
    size_ = 0;
  }
  void copyFrom(const SmallVec& o) {
    size_ = o.size_;
    if (o.heap_) {
      heap_capacity_ = o.heap_capacity_;
      heap_ = new T[heap_capacity_];
      std::memcpy(heap_, o.heap_, size_ * sizeof(T));
    } else {
      std::memcpy(inline_, o.inline_, size_ * sizeof(T));
    }
  }
  void moveFrom(SmallVec&& o) noexcept {
    size_ = o.size_;
    heap_ = o.heap_;
    heap_capacity_ = o.heap_capacity_;
    std::memcpy(inline_, o.inline_, N * sizeof(T));
    o.heap_ = nullptr;
    o.heap_capacity_ = 0;
    o.size_ = 0;
  }

  T inline_[N]{};
  T* heap_ = nullptr;
  std::uint32_t heap_capacity_ = 0;
  std::uint32_t size_ = 0;
};

}  // namespace common

#endif  // PUMI_COMMON_SMALLVEC_HPP
