#ifndef PUMI_COMMON_CRC32_HPP
#define PUMI_COMMON_CRC32_HPP

/// \file crc32.hpp
/// \brief Checksum primitives shared by framing, I/O, and integrity layers.
///
/// Two independent polynomials, deliberately kept apart:
///
///  - crc32(): CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320). This is the
///    *persisted-format* checksum — message frames, pario chunk trailers and
///    MANIFEST records, BuddyJournal dedup keys, mesh fingerprints all store
///    its value on disk or compare it across ranks. Its byte-for-byte output
///    is a compatibility contract and must never change.
///
///  - crc32c(): CRC-32C (Castagnoli, reflected, poly 0x82F63B78). This is
///    the *in-memory integrity* checksum used by core::integrity's sectioned
///    ledgers. On x86-64 with SSE4.2 it compiles to the hardware crc32
///    instruction (~an order of magnitude faster than the table walk), with
///    a scalar table fallback elsewhere; both paths produce identical
///    values, so ledgers are portable across builds.
///
/// Historically crc32 lived in pcu::faults — integrity hashing does not
/// belong to the fault injector, so it moved here; pcu::faults::crc32
/// remains as a thin forwarding wrapper for the framing layer's spelling.

#include <array>
#include <cstddef>
#include <cstdint>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#define PUMI_CRC32C_HW 1        // hardware path compiled in unconditionally
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <nmmintrin.h>
#define PUMI_CRC32C_HW 2        // hardware path behind a runtime CPU check
#else
#define PUMI_CRC32C_HW 0        // scalar table walk only
#endif

namespace common {

namespace detail {

/// Lookup table for the requested reflected polynomial.
template <std::uint32_t Poly>
inline const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? Poly ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

template <std::uint32_t Poly>
inline std::uint32_t crcUpdateScalar(std::uint32_t c, const std::byte* data,
                                     std::size_t n) {
  const auto& table = crcTable<Poly>();
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ static_cast<std::uint8_t>(data[i])) & 0xFFu] ^ (c >> 8);
  return c;
}

#if PUMI_CRC32C_HW
/// CRC-32C update through the SSE4.2 crc32 instruction. When the build is
/// not already targeting SSE4.2 the function carries a target attribute, so
/// it may only be called behind a runtime CPU check (see crc32c below) —
/// the rest of the translation unit stays baseline x86-64.
#if PUMI_CRC32C_HW == 2
__attribute__((target("sse4.2")))
#endif
inline std::uint32_t crc32cUpdateHw(std::uint32_t c, const std::byte* data,
                                    std::size_t n) {
  // Align to 8 bytes, then run the 64-bit instruction, then mop up.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(data) & 7u) != 0) {
    c = _mm_crc32_u8(c, static_cast<std::uint8_t>(*data));
    ++data;
    --n;
  }
  std::uint64_t c64 = c;
  while (n >= 8) {
    std::uint64_t chunk;
    __builtin_memcpy(&chunk, data, 8);
    c64 = _mm_crc32_u64(c64, chunk);
    data += 8;
    n -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (n > 0) {
    c = _mm_crc32_u8(c, static_cast<std::uint8_t>(*data));
    ++data;
    --n;
  }
  return c;
}
#endif

#if PUMI_CRC32C_HW == 2
/// One-time CPUID probe, cached; the integrity ledgers hash every covered
/// byte at every commit point, so the dispatch must be a predictable branch.
inline bool crc32cHwAvailable() {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}
#endif

}  // namespace detail

/// CRC-32 (IEEE 802.3, reflected) of a byte span. Persisted-format checksum;
/// output is a compatibility contract (known answer: "123456789" ->
/// 0xCBF43926).
inline std::uint32_t crc32(const std::byte* data, std::size_t n) {
  return detail::crcUpdateScalar<0xEDB88320u>(0xFFFFFFFFu, data, n) ^
         0xFFFFFFFFu;
}

/// CRC-32C (Castagnoli, reflected) of a byte span, seeded so calls chain:
/// crc32c(b, n, crc32c(a, m)) == crc32c(concat(a,b)). Known answer:
/// "123456789" -> 0xE3069283. Uses the SSE4.2 crc32 instruction when the
/// build targets it, or behind a one-time runtime CPU probe on generic
/// x86-64 builds; the scalar table walk covers everything else. All paths
/// produce identical values.
inline std::uint32_t crc32c(const std::byte* data, std::size_t n,
                            std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
#if PUMI_CRC32C_HW == 1
  c = detail::crc32cUpdateHw(c, data, n);
#elif PUMI_CRC32C_HW == 2
  if (detail::crc32cHwAvailable())
    c = detail::crc32cUpdateHw(c, data, n);
  else
    c = detail::crcUpdateScalar<0x82F63B78u>(c, data, n);
#else
  c = detail::crcUpdateScalar<0x82F63B78u>(c, data, n);
#endif
  return c ^ 0xFFFFFFFFu;
}

/// crc32c over a trivially-copyable value's object representation.
template <class T>
inline std::uint32_t crc32cOf(const T& v, std::uint32_t seed = 0) {
  return crc32c(reinterpret_cast<const std::byte*>(&v), sizeof(T), seed);
}

}  // namespace common

#endif  // PUMI_COMMON_CRC32_HPP
