#ifndef PUMI_COMMON_SET_HPP
#define PUMI_COMMON_SET_HPP

/// \file set.hpp
/// \brief Set component: group arbitrary items under a name.
///
/// One of the three ITAPS-style common utilities (Iterator, Set, Tag). An
/// ItemSet keeps unique members in insertion order — deterministic iteration
/// matters for reproducible parallel algorithms — with O(1) membership tests.

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace common {

template <typename Handle, typename Hash = std::hash<Handle>>
class ItemSet {
 public:
  ItemSet() = default;
  explicit ItemSet(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Insert; returns false if already a member.
  bool add(const Handle& item) {
    auto [it, inserted] = index_.emplace(item, items_.size());
    if (inserted) items_.push_back(item);
    return inserted;
  }

  /// Remove; returns false if not a member. Order of the remaining members
  /// is preserved (tombstone-free removal via back-swap would reorder).
  bool remove(const Handle& item) {
    auto it = index_.find(item);
    if (it == index_.end()) return false;
    const std::size_t pos = it->second;
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(pos));
    index_.erase(it);
    for (auto& [h, i] : index_)
      if (i > pos) --i;
    return true;
  }

  [[nodiscard]] bool contains(const Handle& item) const {
    return index_.count(item) > 0;
  }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  void clear() {
    items_.clear();
    index_.clear();
  }

  /// Members in insertion order.
  [[nodiscard]] const std::vector<Handle>& items() const { return items_; }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::string name_;
  std::vector<Handle> items_;
  std::unordered_map<Handle, std::size_t, Hash> index_;
};

}  // namespace common

#endif  // PUMI_COMMON_SET_HPP
