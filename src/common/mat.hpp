#ifndef PUMI_COMMON_MAT_HPP
#define PUMI_COMMON_MAT_HPP

/// \file mat.hpp
/// \brief 3x3 matrices and symmetric eigen-decomposition.
///
/// Used by recursive inertial bisection (principal axes of the element
/// centroid cloud) and by Hessian-based size fields in mesh adaptation.

#include <array>
#include <cmath>

#include "common/vec.hpp"

namespace common {

struct Mat3 {
  // Row-major storage.
  std::array<double, 9> a{};

  constexpr double& operator()(int r, int c) { return a[r * 3 + c]; }
  constexpr double operator()(int r, int c) const { return a[r * 3 + c]; }

  static constexpr Mat3 zero() { return Mat3{}; }
  static constexpr Mat3 identity() {
    Mat3 m;
    m(0, 0) = m(1, 1) = m(2, 2) = 1.0;
    return m;
  }
  /// Outer product v * v^T.
  static constexpr Mat3 outer(const Vec3& u, const Vec3& v) {
    Mat3 m;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) m(r, c) = u[r] * v[c];
    return m;
  }

  constexpr Mat3& operator+=(const Mat3& o) {
    for (int i = 0; i < 9; ++i) a[i] += o.a[i];
    return *this;
  }
  constexpr Mat3& operator*=(double s) {
    for (double& v : a) v *= s;
    return *this;
  }
  friend constexpr Mat3 operator+(Mat3 m, const Mat3& o) { return m += o; }
  friend constexpr Mat3 operator*(Mat3 m, double s) { return m *= s; }

  friend constexpr Vec3 operator*(const Mat3& m, const Vec3& v) {
    return {m(0, 0) * v.x + m(0, 1) * v.y + m(0, 2) * v.z,
            m(1, 0) * v.x + m(1, 1) * v.y + m(1, 2) * v.z,
            m(2, 0) * v.x + m(2, 1) * v.y + m(2, 2) * v.z};
  }
};

/// Result of a symmetric 3x3 eigen-decomposition: eigenvalues in descending
/// order with matching unit eigenvectors.
struct Eigen3 {
  std::array<double, 3> values{};
  std::array<Vec3, 3> vectors{};
};

/// Classic cyclic Jacobi iteration; `m` must be symmetric.
inline Eigen3 symmetricEigen(Mat3 m) {
  Mat3 v = Mat3::identity();
  for (int sweep = 0; sweep < 64; ++sweep) {
    // Off-diagonal magnitude.
    const double off = m(0, 1) * m(0, 1) + m(0, 2) * m(0, 2) +
                       m(1, 2) * m(1, 2);
    if (off < 1e-30) break;
    for (int p = 0; p < 3; ++p) {
      for (int q = p + 1; q < 3; ++q) {
        if (std::fabs(m(p, q)) < 1e-300) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * m(p, q));
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p,q,theta) on both sides: m = G^T m G.
        for (int k = 0; k < 3; ++k) {
          const double mkp = m(k, p), mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (int k = 0; k < 3; ++k) {
          const double mpk = m(p, k), mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (int k = 0; k < 3; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  Eigen3 e;
  std::array<int, 3> order{0, 1, 2};
  std::array<double, 3> d{m(0, 0), m(1, 1), m(2, 2)};
  // Sort eigenvalues descending.
  for (int i = 0; i < 3; ++i)
    for (int j = i + 1; j < 3; ++j)
      if (d[order[j]] > d[order[i]]) std::swap(order[i], order[j]);
  for (int i = 0; i < 3; ++i) {
    e.values[i] = d[order[i]];
    e.vectors[i] = normalized(Vec3{v(0, order[i]), v(1, order[i]),
                                   v(2, order[i])});
  }
  return e;
}

}  // namespace common

#endif  // PUMI_COMMON_MAT_HPP
