#ifndef PUMI_COMMON_FLATMAP_HPP
#define PUMI_COMMON_FLATMAP_HPP

/// \file flatmap.hpp
/// \brief SIMD-probed open-addressing hash containers (Swiss-table layout).
///
/// `FlatMap<K, V, Hash>` and `FlatSet<K, Hash>` replace the node-based
/// `std::unordered_map`/`set` on the hot paths (keymaps, migration plans,
/// remote-copy tables). Layout: one contiguous control-byte array plus one
/// contiguous slot array. Each control byte is either kEmpty (0x80),
/// kDeleted (0xFE, a tombstone) or the low 7 bits of the key's hash (H2).
/// Lookups scan control bytes a *group of 16* at a time — one SSE2 compare
/// + movemask when available, a portable scalar loop otherwise — so a probe
/// touches at most one cache line of metadata before any key is compared,
/// and most misses are rejected without ever loading a slot.
///
/// Probing is group-wise triangular (g, g+1, g+3, g+6, ... mod ngroups);
/// with a power-of-two group count this visits every group. Inserts reuse
/// the first tombstone seen on the probe path (tombstone reuse), and the
/// table rehashes — doubling, or same-size when mostly tombstones — when
/// occupancy (full + deleted) passes 7/8 of capacity.
///
/// Iterator/reference stability contract (asserted by test_flatmap):
///   * any insert that triggers a rehash invalidates ALL iterators and
///     references; inserts never move *existing* slots otherwise, but the
///     only portable rule callers may rely on is "insert invalidates";
///   * erase() destroys only the erased slot: iterators and references to
///     other elements remain valid (erase never rehashes);
///   * iteration order is unspecified and changes across rehashes — callers
///     needing determinism must collect and sort (the codebase rule since
///     PR 2's deterministic-replay work).
///
/// Requirements on K: copyable and equality-comparable (keys here are small
/// trivially-copyable handles: Ent, GKey, PartId). V may be any movable
/// type (Remote holds a std::vector). The user-supplied Hash is finalized
/// with a splitmix64 mix so identity hashes (std::hash<int>) still spread
/// across groups; H1 (group choice) and H2 (tag byte) come from different
/// bits of the mixed value.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <iterator>
#include <new>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <utility>

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define PUMI_FLATMAP_SSE2 1
#include <emmintrin.h>
#endif

namespace common {

namespace flatdetail {

inline constexpr std::int8_t kEmpty = static_cast<std::int8_t>(0x80);
inline constexpr std::int8_t kDeleted = static_cast<std::int8_t>(0xFE);
inline constexpr std::size_t kGroup = 16;

/// splitmix64 finalizer: guards against weak user hashes (identity
/// std::hash<int>) whose low bits would otherwise collide every H2 tag.
inline std::size_t mixHash(std::size_t h) {
  std::uint64_t x = h;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

/// A 16-byte window over the control array; match* return bitmasks with
/// bit i set when byte i matches.
struct Group {
#if PUMI_FLATMAP_SSE2
  __m128i g;
  explicit Group(const std::int8_t* ctrl)
      : g(_mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl))) {}
  [[nodiscard]] std::uint32_t match(std::int8_t h2) const {
    return static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(_mm_set1_epi8(h2), g)));
  }
  [[nodiscard]] std::uint32_t matchEmpty() const { return match(kEmpty); }
  /// Empty and deleted both have the sign bit set; full tags are 0..127.
  [[nodiscard]] std::uint32_t matchEmptyOrDeleted() const {
    return static_cast<std::uint32_t>(_mm_movemask_epi8(g));
  }
#else
  std::int8_t b[kGroup];
  explicit Group(const std::int8_t* ctrl) { std::memcpy(b, ctrl, kGroup); }
  [[nodiscard]] std::uint32_t match(std::int8_t h2) const {
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < kGroup; ++i)
      if (b[i] == h2) m |= 1u << i;
    return m;
  }
  [[nodiscard]] std::uint32_t matchEmpty() const { return match(kEmpty); }
  [[nodiscard]] std::uint32_t matchEmptyOrDeleted() const {
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < kGroup; ++i)
      if (b[i] < 0) m |= 1u << i;
    return m;
  }
#endif
};

inline unsigned trailingZeros(std::uint32_t m) {
  assert(m != 0);
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctz(m));
#else
  unsigned n = 0;
  while (!(m & 1u)) {
    m >>= 1;
    ++n;
  }
  return n;
#endif
}

template <class K, class V>
struct MapPolicy {
  using key_type = K;
  using value_type = std::pair<const K, V>;
  static const K& key(const value_type& v) { return v.first; }
};

template <class K>
struct SetPolicy {
  using key_type = K;
  using value_type = K;
  static const K& key(const value_type& v) { return v; }
};

/// The shared open-addressing core; FlatMap/FlatSet add their insert
/// front-ends on top.
template <class Policy, class Hash>
class Table {
 public:
  using key_type = typename Policy::key_type;
  using value_type = typename Policy::value_type;
  using size_type = std::size_t;

  template <bool Const>
  class Iter {
   public:
    using value_type = typename Policy::value_type;
    using value_t = std::conditional_t<Const, const value_type, value_type>;
    using iterator_category = std::forward_iterator_tag;
    using difference_type = std::ptrdiff_t;
    using reference = value_t&;
    using pointer = value_t*;

    Iter() = default;
    value_t& operator*() const { return *slot_; }
    value_t* operator->() const { return slot_; }
    Iter& operator++() {
      ++ctrl_;
      ++slot_;
      settle();
      return *this;
    }
    Iter operator++(int) {
      Iter t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.ctrl_ == b.ctrl_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.ctrl_ != b.ctrl_;
    }
    /// iterator -> const_iterator conversion
    operator Iter<true>() const
      requires(!Const)
    {
      return Iter<true>(ctrl_, slot_, end_);
    }

   private:
    friend class Table;
    template <bool>
    friend class Iter;
    Iter(const std::int8_t* ctrl, value_t* slot, const std::int8_t* end)
        : ctrl_(ctrl), slot_(slot), end_(end) {}
    void settle() {
      while (ctrl_ != end_ && *ctrl_ < 0) {
        ++ctrl_;
        ++slot_;
      }
    }
    const std::int8_t* ctrl_ = nullptr;
    value_t* slot_ = nullptr;
    const std::int8_t* end_ = nullptr;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  Table() = default;
  Table(const Table& o) { copyFrom(o); }
  Table(Table&& o) noexcept { moveFrom(o); }
  Table& operator=(const Table& o) {
    if (this != &o) {
      destroyAll();
      copyFrom(o);
    }
    return *this;
  }
  Table& operator=(Table&& o) noexcept {
    if (this != &o) {
      destroyAll();
      moveFrom(o);
    }
    return *this;
  }
  ~Table() { destroyAll(); }

  [[nodiscard]] size_type size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] size_type capacity() const { return ngroups_ * kGroup; }

  iterator begin() {
    iterator it(ctrl_, slots_, ctrl_ + capacity());
    it.settle();
    return it;
  }
  iterator end() { return iterator(ctrl_ + capacity(), nullptr, nullptr); }
  const_iterator begin() const {
    const_iterator it(ctrl_, slots_, ctrl_ + capacity());
    it.settle();
    return it;
  }
  const_iterator end() const {
    return const_iterator(ctrl_ + capacity(), nullptr, nullptr);
  }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

  iterator find(const key_type& k) {
    const std::size_t i = findSlot(k);
    if (i == kNpos) return end();
    return iterator(ctrl_ + i, slots_ + i, ctrl_ + capacity());
  }
  const_iterator find(const key_type& k) const {
    const std::size_t i = findSlot(k);
    if (i == kNpos) return end();
    return const_iterator(ctrl_ + i, slots_ + i, ctrl_ + capacity());
  }
  [[nodiscard]] bool contains(const key_type& k) const {
    return findSlot(k) != kNpos;
  }
  [[nodiscard]] size_type count(const key_type& k) const {
    return contains(k) ? 1 : 0;
  }

  /// Erase by key; returns the number of elements removed (0 or 1).
  /// Never rehashes: iterators/references to other elements stay valid.
  size_type erase(const key_type& k) {
    const std::size_t i = findSlot(k);
    if (i == kNpos) return 0;
    eraseSlot(i);
    return 1;
  }
  /// Erase by iterator; returns the iterator to the next element.
  iterator erase(const_iterator pos) {
    assert(pos != cend());
    const std::size_t i = static_cast<std::size_t>(pos.ctrl_ - ctrl_);
    eraseSlot(i);
    iterator it(ctrl_ + i, slots_ + i, ctrl_ + capacity());
    it.settle();
    return it;
  }

  void clear() {
    if (!ngroups_) return;
    for (std::size_t i = 0, c = capacity(); i < c; ++i)
      if (ctrl_[i] >= 0) slots_[i].~value_type();
    std::memset(ctrl_, kEmpty, capacity());
    size_ = 0;
    occupied_ = 0;
  }

  /// Ensure capacity for n elements without rehashing.
  void reserve(size_type n) {
    const std::size_t want = groupsFor(n);
    if (want > ngroups_) rehash(want);
  }

 protected:
  static constexpr std::size_t kNpos = ~std::size_t{0};

  /// Locate the slot holding k, or kNpos.
  std::size_t findSlot(const key_type& k) const {
    if (!ngroups_) return kNpos;
    const std::size_t h = mixHash(Hash{}(k));
    const std::int8_t h2 = static_cast<std::int8_t>(h & 0x7f);
    std::size_t g = (h >> 7) & (ngroups_ - 1);
    std::size_t stride = 0;
    while (true) {
      const Group grp(ctrl_ + g * kGroup);
      for (std::uint32_t m = grp.match(h2); m; m &= m - 1) {
        const std::size_t i = g * kGroup + trailingZeros(m);
        if (Policy::key(slots_[i]) == k) return i;
      }
      if (grp.matchEmpty()) return kNpos;
      ++stride;
      assert(stride <= ngroups_ && "flatmap probe wrapped: table corrupt");
      g = (g + stride) & (ngroups_ - 1);
    }
  }

  /// Find k or claim a slot for it (reusing the first tombstone on the
  /// probe path). Returns (slot, inserted). On insert the control byte is
  /// set but the slot is NOT constructed — the caller placement-news it.
  std::pair<std::size_t, bool> findOrPrepare(const key_type& k) {
    if (occupied_ + 1 > (capacity() * 7) / 8) grow();
    const std::size_t h = mixHash(Hash{}(k));
    const std::int8_t h2 = static_cast<std::int8_t>(h & 0x7f);
    std::size_t g = (h >> 7) & (ngroups_ - 1);
    std::size_t stride = 0;
    std::size_t claim = kNpos;
    while (true) {
      const Group grp(ctrl_ + g * kGroup);
      for (std::uint32_t m = grp.match(h2); m; m &= m - 1) {
        const std::size_t i = g * kGroup + trailingZeros(m);
        if (Policy::key(slots_[i]) == k) return {i, false};
      }
      if (claim == kNpos) {
        if (const std::uint32_t m = grp.matchEmptyOrDeleted())
          claim = g * kGroup + trailingZeros(m);
      }
      if (grp.matchEmpty()) break;
      ++stride;
      assert(stride <= ngroups_ && "flatmap probe wrapped: table corrupt");
      g = (g + stride) & (ngroups_ - 1);
    }
    assert(claim != kNpos);
    if (ctrl_[claim] == kEmpty) ++occupied_;
    ctrl_[claim] = h2;
    ++size_;
    return {claim, true};
  }

  iterator iterAt(std::size_t i) {
    return iterator(ctrl_ + i, slots_ + i, ctrl_ + capacity());
  }

  std::int8_t* ctrl_ = nullptr;
  value_type* slots_ = nullptr;
  std::size_t ngroups_ = 0;  ///< power of two (or 0 before first insert)
  std::size_t size_ = 0;     ///< live elements
  std::size_t occupied_ = 0; ///< full + tombstone control bytes

 private:
  static std::size_t groupsFor(std::size_t n) {
    // smallest power-of-two group count with n <= capacity * 7/8
    std::size_t g = 1;
    while (n * 8 > g * kGroup * 7) g <<= 1;
    return g;
  }

  void grow() {
    // Double when genuinely full; rehash in place (same capacity) when the
    // table is mostly tombstones — erase-heavy workloads stay bounded.
    std::size_t target = ngroups_ ? ngroups_ : 1;
    if ((size_ + 1) * 8 > target * kGroup * 7) target <<= 1;
    rehash(target);
  }

  void rehash(std::size_t new_groups) {
    std::int8_t* old_ctrl = ctrl_;
    value_type* old_slots = slots_;
    const std::size_t old_cap = capacity();

    ctrl_ = static_cast<std::int8_t*>(::operator new(new_groups * kGroup));
    slots_ = static_cast<value_type*>(
        ::operator new(new_groups * kGroup * sizeof(value_type),
                       std::align_val_t(alignof(value_type))));
    std::memset(ctrl_, kEmpty, new_groups * kGroup);
    ngroups_ = new_groups;
    occupied_ = size_;

    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old_ctrl[i] < 0) continue;
      const std::size_t h = mixHash(Hash{}(Policy::key(old_slots[i])));
      const std::int8_t h2 = static_cast<std::int8_t>(h & 0x7f);
      std::size_t g = (h >> 7) & (ngroups_ - 1);
      std::size_t stride = 0;
      while (true) {
        const Group grp(ctrl_ + g * kGroup);
        if (const std::uint32_t m = grp.matchEmpty()) {
          const std::size_t j = g * kGroup + trailingZeros(m);
          ::new (static_cast<void*>(slots_ + j))
              value_type(std::move(old_slots[i]));
          old_slots[i].~value_type();
          ctrl_[j] = h2;
          break;
        }
        ++stride;
        g = (g + stride) & (ngroups_ - 1);
      }
    }
    if (old_ctrl) {
      ::operator delete(old_ctrl);
      ::operator delete(old_slots, std::align_val_t(alignof(value_type)));
    }
  }

  void eraseSlot(std::size_t i) {
    assert(ctrl_[i] >= 0);
    slots_[i].~value_type();
    ctrl_[i] = kDeleted;  // tombstone: probe chains through it stay intact
    --size_;
  }

  void destroyAll() {
    if (!ngroups_) return;
    for (std::size_t i = 0, c = capacity(); i < c; ++i)
      if (ctrl_[i] >= 0) slots_[i].~value_type();
    ::operator delete(ctrl_);
    ::operator delete(slots_, std::align_val_t(alignof(value_type)));
    ctrl_ = nullptr;
    slots_ = nullptr;
    ngroups_ = size_ = occupied_ = 0;
  }

  void copyFrom(const Table& o) {
    if (o.size_) {
      rehash(groupsFor(o.size_));
      for (const value_type& v : o) {
        auto [i, inserted] = findOrPrepare(Policy::key(v));
        assert(inserted);
        ::new (static_cast<void*>(slots_ + i)) value_type(v);
      }
    }
  }

  void moveFrom(Table& o) noexcept {
    ctrl_ = o.ctrl_;
    slots_ = o.slots_;
    ngroups_ = o.ngroups_;
    size_ = o.size_;
    occupied_ = o.occupied_;
    o.ctrl_ = nullptr;
    o.slots_ = nullptr;
    o.ngroups_ = o.size_ = o.occupied_ = 0;
  }
};

}  // namespace flatdetail

/// Open-addressing hash map; drop-in for the std::unordered_map subset the
/// codebase uses. See the file comment for the stability contract.
template <class K, class V, class Hash = std::hash<K>>
class FlatMap : public flatdetail::Table<flatdetail::MapPolicy<K, V>, Hash> {
  using Base = flatdetail::Table<flatdetail::MapPolicy<K, V>, Hash>;

 public:
  using key_type = K;
  using mapped_type = V;
  using typename Base::const_iterator;
  using typename Base::iterator;
  using typename Base::value_type;

  FlatMap() = default;
  template <class It>
  FlatMap(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }
  FlatMap(std::initializer_list<value_type> init)
      : FlatMap(init.begin(), init.end()) {}

  V& operator[](const K& k) {
    auto [i, inserted] = this->findOrPrepare(k);
    if (inserted) ::new (static_cast<void*>(this->slots_ + i)) value_type(k, V());
    return this->slots_[i].second;
  }

  V& at(const K& k) {
    const std::size_t i = this->findSlot(k);
    if (i == Base::kNpos) throw std::out_of_range("FlatMap::at");
    return this->slots_[i].second;
  }
  const V& at(const K& k) const {
    const std::size_t i = this->findSlot(k);
    if (i == Base::kNpos) throw std::out_of_range("FlatMap::at");
    return this->slots_[i].second;
  }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const K& k, Args&&... args) {
    auto [i, inserted] = this->findOrPrepare(k);
    if (inserted)
      ::new (static_cast<void*>(this->slots_ + i))
          value_type(std::piecewise_construct, std::forward_as_tuple(k),
                     std::forward_as_tuple(std::forward<Args>(args)...));
    return {this->iterAt(i), inserted};
  }

  /// Key-first emplace (the only form the codebase uses).
  template <class... Args>
  std::pair<iterator, bool> emplace(const K& k, Args&&... args) {
    return try_emplace(k, std::forward<Args>(args)...);
  }

  std::pair<iterator, bool> insert(const value_type& v) {
    auto [i, inserted] = this->findOrPrepare(v.first);
    if (inserted) ::new (static_cast<void*>(this->slots_ + i)) value_type(v);
    return {this->iterAt(i), inserted};
  }
  std::pair<iterator, bool> insert(value_type&& v) {
    auto [i, inserted] = this->findOrPrepare(v.first);
    if (inserted)
      ::new (static_cast<void*>(this->slots_ + i)) value_type(std::move(v));
    return {this->iterAt(i), inserted};
  }
};

/// Open-addressing hash set; drop-in for the std::unordered_set subset the
/// codebase uses.
template <class K, class Hash = std::hash<K>>
class FlatSet : public flatdetail::Table<flatdetail::SetPolicy<K>, Hash> {
  using Base = flatdetail::Table<flatdetail::SetPolicy<K>, Hash>;

 public:
  using key_type = K;
  using typename Base::const_iterator;
  using typename Base::iterator;
  using typename Base::value_type;

  FlatSet() = default;
  template <class It>
  FlatSet(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }
  FlatSet(std::initializer_list<K> init) : FlatSet(init.begin(), init.end()) {}

  std::pair<iterator, bool> insert(const K& k) {
    auto [i, inserted] = this->findOrPrepare(k);
    if (inserted) ::new (static_cast<void*>(this->slots_ + i)) K(k);
    return {this->iterAt(i), inserted};
  }
  template <class... Args>
  std::pair<iterator, bool> emplace(Args&&... args) {
    return insert(K(std::forward<Args>(args)...));
  }
};

}  // namespace common

#endif  // PUMI_COMMON_FLATMAP_HPP
