#ifndef PUMI_HPP
#define PUMI_HPP

/// \file pumi.hpp
/// \brief Umbrella header: the full public API of the PUMI/ParMA
/// reproduction. Include individual module headers instead when build
/// times matter; this exists for quick starts and examples.
///
/// Module map (see README.md for the architecture overview):
///   common/  — Tag/Set utilities, math, RNG
///   pcu/     — message-passing runtime, machine model, counters
///   gmi/     — geometric model, shapes, builders, persistence
///   core/    — mesh database, measures, verification, I/O
///   meshgen/ — synthetic meshes (box, vessel, wing)
///   dist/    — distributed mesh, migration, ghosting, numbering,
///              partition model, parallel adaptation
///   field/   — tensor fields over mesh entities
///   adapt/   — size/metric fields, split/collapse/swap, refine/coarsen,
///              quality, smoothing, solution transfer
///   part/    — partitioners, local splitting, coloring, reordering
///   parma/   — ParMA: metrics, priorities, improvement, heavy part
///              splitting, one-call balance
///   solver/  — distributed FE Poisson solver (example PDE consumer)

#include "common/mat.hpp"
#include "common/rng.hpp"
#include "common/set.hpp"
#include "common/smallvec.hpp"
#include "common/tag.hpp"
#include "common/vec.hpp"

#include "pcu/buffer.hpp"
#include "pcu/comm.hpp"
#include "pcu/counters.hpp"
#include "pcu/machine.hpp"
#include "pcu/phased.hpp"
#include "pcu/runtime.hpp"

#include "gmi/builders.hpp"
#include "gmi/model.hpp"
#include "gmi/modelio.hpp"
#include "gmi/shapes.hpp"

#include "core/entity.hpp"
#include "core/measure.hpp"
#include "core/mesh.hpp"
#include "core/meshio.hpp"
#include "core/tagio.hpp"
#include "core/topo.hpp"
#include "core/verify.hpp"
#include "core/vtk.hpp"

#include "meshgen/boxmesh.hpp"
#include "meshgen/workloads.hpp"

#include "dist/network.hpp"
#include "dist/numbering.hpp"
#include "dist/padapt.hpp"
#include "dist/partedmesh.hpp"
#include "dist/ptnmodel.hpp"
#include "dist/types.hpp"

#include "field/field.hpp"

#include "adapt/collapse.hpp"
#include "adapt/metric.hpp"
#include "adapt/quality.hpp"
#include "adapt/refine.hpp"
#include "adapt/sizefield.hpp"
#include "adapt/split.hpp"
#include "adapt/swap.hpp"
#include "adapt/transfer.hpp"

#include "part/coloring.hpp"
#include "part/graph.hpp"
#include "part/localsplit.hpp"
#include "part/partition.hpp"
#include "part/reorder.hpp"

#include "parma/balance.hpp"
#include "parma/heavysplit.hpp"
#include "parma/improve.hpp"
#include "parma/metrics.hpp"
#include "parma/priority.hpp"

#include "solver/poisson.hpp"

#endif  // PUMI_HPP
