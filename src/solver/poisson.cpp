#include "solver/poisson.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <cassert>
#include <unordered_map>

#include "core/measure.hpp"
#include "field/field.hpp"
#include "gmi/model.hpp"

namespace solver {

using common::Vec3;
using core::Ent;
using core::EntHash;
using dist::PartId;

namespace {

/// P1 shape-function gradients of a simplex element; returns the element
/// measure (volume/area).
double shapeGradients(const core::Mesh& mesh, Ent elem,
                      std::array<Vec3, 4>& grad, int& nv) {
  const auto vs = mesh.verts(elem);
  nv = static_cast<int>(vs.size());
  if (elem.topo() == core::Topo::Tet) {
    const Vec3 p0 = mesh.point(vs[0]);
    const Vec3 e1 = mesh.point(vs[1]) - p0;
    const Vec3 e2 = mesh.point(vs[2]) - p0;
    const Vec3 e3 = mesh.point(vs[3]) - p0;
    const double det = common::dot(e1, common::cross(e2, e3));
    if (det == 0.0) throw std::runtime_error("poisson: degenerate tet");
    grad[1] = common::cross(e2, e3) / det;
    grad[2] = common::cross(e3, e1) / det;
    grad[3] = common::cross(e1, e2) / det;
    grad[0] = -(grad[1] + grad[2] + grad[3]);
    return std::fabs(det) / 6.0;
  }
  if (elem.topo() == core::Topo::Tri) {
    const Vec3 p0 = mesh.point(vs[0]);
    const Vec3 e1 = mesh.point(vs[1]) - p0;
    const Vec3 e2 = mesh.point(vs[2]) - p0;
    const double a11 = common::dot(e1, e1), a12 = common::dot(e1, e2),
                 a22 = common::dot(e2, e2);
    const double det = a11 * a22 - a12 * a12;
    if (det == 0.0) throw std::runtime_error("poisson: degenerate tri");
    // grad lambda_k solves the Gram system for the barycentric basis.
    grad[1] = (e1 * a22 - e2 * a12) / det;
    grad[2] = (e2 * a11 - e1 * a12) / det;
    grad[0] = -(grad[1] + grad[2]);
    return 0.5 * std::sqrt(det);
  }
  throw std::invalid_argument("poisson: simplex meshes only");
}

/// All per-part solver state.
struct PartData {
  std::vector<Ent> verts;
  std::unordered_map<Ent, int, EntHash> idx;
  // CSR stiffness.
  std::vector<int> row_ptr;
  std::vector<int> col;
  std::vector<double> val;
  std::vector<char> fixed;
  std::vector<char> owned;
  // Vectors.
  std::vector<double> u, b, r, p, q, z, diag;
};

class Context {
 public:
  Context(dist::PartedMesh& pm) : pm_(pm), parts_(pm.parts()) {}

  std::vector<PartData> data;

  /// Sum partial values of shared vertices across parts, then broadcast
  /// the totals back so every copy agrees.
  void accumulate(std::vector<double> PartData::* vec) {
    auto& net = pm_.network();
    // Copies report to owners.
    for (PartId p = 0; p < parts_; ++p) {
      const auto& part = pm_.part(p);
      for (const auto& [e, rem] : part.remotes()) {
        if (e.topo() != core::Topo::Vertex || rem.owner == p) continue;
        for (const dist::Copy& c : rem.copies) {
          if (c.part != rem.owner) continue;
          pcu::OutBuffer msg;
          msg.pack<std::uint64_t>(c.ent.packed());
          msg.pack<double>(
              (data[static_cast<std::size_t>(p)].*vec)
                  [static_cast<std::size_t>(
                      data[static_cast<std::size_t>(p)].idx.at(e))]);
          net.send(p, rem.owner, std::move(msg));
        }
      }
    }
    net.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
      const Ent owner_ent = Ent::unpack(body.unpack<std::uint64_t>());
      const double v = body.unpack<double>();
      auto& d = data[static_cast<std::size_t>(to)];
      (d.*vec)[static_cast<std::size_t>(d.idx.at(owner_ent))] += v;
    });
    // Owners broadcast totals.
    for (PartId p = 0; p < parts_; ++p) {
      const auto& part = pm_.part(p);
      for (const auto& [e, rem] : part.remotes()) {
        if (e.topo() != core::Topo::Vertex || rem.owner != p) continue;
        auto& d = data[static_cast<std::size_t>(p)];
        const double total =
            (d.*vec)[static_cast<std::size_t>(d.idx.at(e))];
        for (const dist::Copy& c : rem.copies) {
          pcu::OutBuffer msg;
          msg.pack<std::uint64_t>(c.ent.packed());
          msg.pack<double>(total);
          net.send(p, c.part, std::move(msg));
        }
      }
    }
    net.deliverAll([&](PartId to, PartId, pcu::InBuffer body) {
      const Ent local = Ent::unpack(body.unpack<std::uint64_t>());
      const double v = body.unpack<double>();
      auto& d = data[static_cast<std::size_t>(to)];
      (d.*vec)[static_cast<std::size_t>(d.idx.at(local))] = v;
    });
  }

  /// Global dot product, counting each vertex once (on its owner).
  [[nodiscard]] double dot(std::vector<double> PartData::* a,
                           std::vector<double> PartData::* b) const {
    double sum = 0.0;
    for (PartId p = 0; p < parts_; ++p) {
      const auto& d = data[static_cast<std::size_t>(p)];
      for (std::size_t i = 0; i < d.verts.size(); ++i)
        if (d.owned[i]) sum += (d.*a)[i] * (d.*b)[i];
    }
    return sum;
  }

  /// q = K p on every part, accumulated across copies, zeroed at Dirichlet
  /// rows (projected operator).
  void applyStiffness() {
    for (auto& d : data) {
      for (std::size_t i = 0; i < d.verts.size(); ++i) {
        double acc = 0.0;
        for (int k = d.row_ptr[i]; k < d.row_ptr[i + 1]; ++k)
          acc += d.val[static_cast<std::size_t>(k)] *
                 d.p[static_cast<std::size_t>(
                     d.col[static_cast<std::size_t>(k)])];
        d.q[i] = acc;
      }
    }
    accumulate(&PartData::q);
    for (auto& d : data)
      for (std::size_t i = 0; i < d.verts.size(); ++i)
        if (d.fixed[i]) d.q[i] = 0.0;
  }

 private:
  dist::PartedMesh& pm_;
  int parts_;
};

}  // namespace

PoissonReport solvePoisson(dist::PartedMesh& pm,
                           const std::function<double(const Vec3&)>& f,
                           const std::function<double(const Vec3&)>& g,
                           const PoissonOptions& opts) {
  const int dim = pm.dim();
  for (PartId p = 0; p < pm.parts(); ++p)
    if (pm.part(p).ghostCount() > 0)
      throw std::logic_error("poisson: unghost before solving");

  Context ctx(pm);
  ctx.data.resize(static_cast<std::size_t>(pm.parts()));

  // --- per-part setup & assembly -----------------------------------------
  for (PartId p = 0; p < pm.parts(); ++p) {
    auto& part = pm.part(p);
    auto& mesh = part.mesh();
    auto& d = ctx.data[static_cast<std::size_t>(p)];
    for (Ent v : mesh.entities(0)) {
      d.idx.emplace(v, static_cast<int>(d.verts.size()));
      d.verts.push_back(v);
    }
    const std::size_t n = d.verts.size();
    d.fixed.assign(n, 0);
    d.owned.assign(n, 0);
    d.u.assign(n, 0.0);
    d.b.assign(n, 0.0);
    d.r.assign(n, 0.0);
    d.p.assign(n, 0.0);
    d.q.assign(n, 0.0);
    d.z.assign(n, 0.0);
    d.diag.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const Ent v = d.verts[i];
      d.owned[i] = part.isOwned(v) ? 1 : 0;
      gmi::Entity* cls = mesh.classification(v);
      if (cls != nullptr && cls->dim() < dim) {
        d.fixed[i] = 1;
        d.u[i] = g(mesh.point(v));
      }
    }

    // CSR pattern from the P1 stencil (self + edge neighbours).
    d.row_ptr.assign(n + 1, 0);
    std::vector<std::vector<int>> cols(n);
    for (std::size_t i = 0; i < n; ++i) {
      cols[i].push_back(static_cast<int>(i));
      for (Ent e : mesh.up(d.verts[i])) {
        const auto vs = mesh.verts(e);
        const Ent other = vs[0] == d.verts[i] ? vs[1] : vs[0];
        cols[i].push_back(d.idx.at(other));
      }
      std::sort(cols[i].begin(), cols[i].end());
      d.row_ptr[i + 1] = d.row_ptr[i] + static_cast<int>(cols[i].size());
    }
    d.col.reserve(static_cast<std::size_t>(d.row_ptr[n]));
    for (auto& c : cols) d.col.insert(d.col.end(), c.begin(), c.end());
    d.val.assign(static_cast<std::size_t>(d.row_ptr[n]), 0.0);
    auto entry = [&](int row, int column) -> double& {
      const auto begin = d.col.begin() + d.row_ptr[row];
      const auto end = d.col.begin() + d.row_ptr[row + 1];
      const auto it = std::lower_bound(begin, end, column);
      assert(it != end && *it == column);
      return d.val[static_cast<std::size_t>(it - d.col.begin())];
    };

    // Element loop (ghost-free by precondition).
    std::array<Vec3, 4> grad{};
    for (Ent elem : mesh.entities(dim)) {
      int nv = 0;
      const double measure = shapeGradients(mesh, elem, grad, nv);
      const auto vs = mesh.verts(elem);
      std::array<int, 4> li{};
      for (int a = 0; a < nv; ++a)
        li[static_cast<std::size_t>(a)] = d.idx.at(vs[static_cast<std::size_t>(a)]);
      for (int a = 0; a < nv; ++a) {
        for (int bcol = 0; bcol < nv; ++bcol)
          entry(li[static_cast<std::size_t>(a)], li[static_cast<std::size_t>(bcol)]) +=
              measure * common::dot(grad[static_cast<std::size_t>(a)],
                                    grad[static_cast<std::size_t>(bcol)]);
        // Lumped load.
        d.b[static_cast<std::size_t>(li[static_cast<std::size_t>(a)])] +=
            f(mesh.point(vs[static_cast<std::size_t>(a)])) * measure / nv;
      }
    }
  }
  ctx.accumulate(&PartData::b);
  // Jacobi preconditioner: the accumulated stiffness diagonal.
  for (auto& d : ctx.data) {
    for (std::size_t i = 0; i < d.verts.size(); ++i) {
      for (int k = d.row_ptr[i]; k < d.row_ptr[i + 1]; ++k)
        if (d.col[static_cast<std::size_t>(k)] == static_cast<int>(i))
          d.diag[i] = d.val[static_cast<std::size_t>(k)];
    }
  }
  ctx.accumulate(&PartData::diag);

  // --- projected conjugate gradients ---------------------------------------
  // r = b - K u (u holds Dirichlet data), zeroed on fixed rows.
  for (auto& d : ctx.data) d.p = d.u;
  ctx.applyStiffness();  // q = K u projected... but we need the raw product:
  // recompute without projection: the projection only zeroed fixed rows of
  // q, which we zero in r anyway.
  auto precondition = [&]() {  // z = diag^-1 r on free rows
    for (auto& d : ctx.data)
      for (std::size_t i = 0; i < d.verts.size(); ++i)
        d.z[i] = (d.fixed[i] || d.diag[i] == 0.0) ? 0.0 : d.r[i] / d.diag[i];
  };
  for (auto& d : ctx.data) {
    for (std::size_t i = 0; i < d.verts.size(); ++i)
      d.r[i] = d.fixed[i] ? 0.0 : d.b[i] - d.q[i];
  }
  precondition();
  for (auto& d : ctx.data) d.p = d.z;
  double rz = ctx.dot(&PartData::r, &PartData::z);
  double rr = ctx.dot(&PartData::r, &PartData::r);
  const double rr0 = rr > 0.0 ? rr : 1.0;

  PoissonReport report;
  for (int it = 0; it < opts.max_iterations; ++it) {
    if (std::sqrt(rr / rr0) < opts.tolerance) {
      report.converged = true;
      break;
    }
    ctx.applyStiffness();
    const double pq = ctx.dot(&PartData::p, &PartData::q);
    if (pq <= 0.0) break;  // matrix not SPD on the free space: give up
    const double alpha = rz / pq;
    for (auto& d : ctx.data) {
      for (std::size_t i = 0; i < d.verts.size(); ++i) {
        d.u[i] += alpha * d.p[i];
        d.r[i] -= alpha * d.q[i];
      }
    }
    precondition();
    const double rz_new = ctx.dot(&PartData::r, &PartData::z);
    const double beta = rz_new / rz;
    for (auto& d : ctx.data)
      for (std::size_t i = 0; i < d.verts.size(); ++i)
        d.p[i] = d.z[i] + beta * d.p[i];
    rz = rz_new;
    rr = ctx.dot(&PartData::r, &PartData::r);
    report.iterations = it + 1;
  }
  report.residual = std::sqrt(rr / rr0);
  if (std::sqrt(rr / rr0) < opts.tolerance) report.converged = true;

  // --- publish the solution as the vertex field "u" ------------------------
  for (PartId p = 0; p < pm.parts(); ++p) {
    auto& d = ctx.data[static_cast<std::size_t>(p)];
    field::Field u(pm.part(p).mesh(), "u", field::ValueType::Scalar,
                   field::Location::Vertex);
    for (std::size_t i = 0; i < d.verts.size(); ++i)
      u.setScalar(d.verts[i], d.u[i]);
  }
  return report;
}

}  // namespace solver
