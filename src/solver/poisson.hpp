#ifndef PUMI_SOLVER_POISSON_HPP
#define PUMI_SOLVER_POISSON_HPP

/// \file poisson.hpp
/// \brief A distributed P1 finite-element Poisson solver — the PDE-analysis
/// consumer the infrastructure exists to support (the paper's Sec. I: "the
/// parallel unstructured mesh data structures and services needed by the
/// developers of PDE solution procedures").
///
/// Solves -lap(u) = f on the meshed domain with Dirichlet data g on the
/// geometric model boundary (every vertex classified below the mesh
/// dimension). Linear Lagrange elements on tets or tris; conjugate
/// gradients with owner-aware parallel reductions:
///   - element stiffness assembled part-locally,
///   - matrix-vector products accumulate partial sums across part-boundary
///     vertex copies through the part-to-part network,
///   - dot products count each vertex once (on its owning part).
/// The solution is written to the vertex field "u" on every part.

#include <functional>

#include "common/vec.hpp"
#include "dist/partedmesh.hpp"

namespace solver {

struct PoissonOptions {
  int max_iterations = 1000;
  double tolerance = 1e-10;  ///< relative residual reduction
};

struct PoissonReport {
  int iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
};

/// Solve -lap(u) = f, u = g on the model boundary. Requires a simplex
/// (tet/tri) PartedMesh without ghosts. The result is stored in the vertex
/// field "u" (tag "field:u") on all parts, consistent across copies.
PoissonReport solvePoisson(dist::PartedMesh& pm,
                           const std::function<double(const common::Vec3&)>& f,
                           const std::function<double(const common::Vec3&)>& g,
                           const PoissonOptions& opts = {});

}  // namespace solver

#endif  // PUMI_SOLVER_POISSON_HPP
