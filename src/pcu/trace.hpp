#ifndef PUMI_PCU_TRACE_HPP
#define PUMI_PCU_TRACE_HPP

/// \file trace.hpp
/// \brief Per-rank event tracing (paper Sec. II-D, "performance
/// measurement"): begin/end scopes, instant events and message send/recv
/// records with byte counts and peer ranks.
///
/// Events are appended to lock-free per-thread buffers: the recording
/// thread takes no lock on the hot path (one relaxed atomic load when
/// tracing is disabled; one release store per event when enabled). Buffers
/// are merged at quiescent points — after pcu::run() returns or between
/// bulk-synchronous phases — into (a) a Chrome trace_event JSON viewable in
/// about://tracing or https://ui.perfetto.dev and (b) an aggregated
/// per-phase report (see stats.hpp).
///
/// The subsystem is off by default; set the PUMI_TRACE environment
/// variable (1/true/on) or call setEnabled(true). When enabled from the
/// environment, the merged Chrome trace is written automatically at
/// process exit to $PUMI_TRACE_FILE (default "pumi_trace.json").
///
/// Rank attribution: pcu::run() tags each rank thread via setThreadRank();
/// layers that act on behalf of a part from a driver thread (dist::Network)
/// use the *As variants to attribute events to the part explicitly. Events
/// with no rank (-1) belong to the driver.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pcu::trace {

/// What one event records.
enum class Kind : std::uint8_t {
  kBegin,    ///< scope entry; matches the next kEnd of the same name
  kEnd,      ///< scope exit
  kInstant,  ///< a point-in-time marker
  kSend,     ///< message posted: peer = destination, value = bytes
  kRecv,     ///< message consumed: peer = source, value = bytes
  kCounter,  ///< named sample: value = the sample
};

/// One trace record. `name` points at a string literal or an interned
/// string (see intern()) and is valid for the life of the process.
struct Event {
  Kind kind;
  std::int32_t rank;   ///< emitting rank or part (-1: driver thread)
  std::int32_t peer;   ///< send/recv peer rank; -1 otherwise
  std::int64_t value;  ///< send/recv payload bytes, or counter value
  double ts;           ///< seconds (pcu::now() clock)
  const char* name;    ///< phase name, or channel name for send/recv
  const char* tenant;  ///< owning tenant (see setThreadTenant); nullptr: none
};

/// True when tracing is active. First call latches the PUMI_TRACE
/// environment variable; setEnabled() overrides it.
bool enabled();
void setEnabled(bool on);

/// Thread-local rank used for events recorded without explicit
/// attribution. pcu::run() sets it on every rank thread; -1 elsewhere.
void setThreadRank(int rank);
[[nodiscard]] int threadRank();

/// Thread-local tenant label stamped on every event this thread records
/// (multi-tenant service attribution; see svc::). Pass an interned pointer
/// or a string literal — the pointer must outlive recording. nullptr (the
/// default everywhere) means "no tenant". Per-tenant views are cut from the
/// merged snapshot by stats::buildTraceReport(merged, tenant).
void setThreadTenant(const char* tenant);
[[nodiscard]] const char* threadTenant();

/// Copy a dynamic name into the process-lifetime string pool and return a
/// stable pointer. Phase names that are compile-time literals should be
/// passed directly instead.
const char* intern(std::string_view name);

/// Most recent begin()-phase name recorded for a rank, or "?" when none.
/// Maintained even while tracing is disabled (one relaxed pointer store per
/// begin), so watchdog failure reports can always name each rank's
/// last-known phase.
const char* lastPhase(int rank);

/// --- recording (all no-ops when disabled) ------------------------------
void begin(const char* name);
void end(const char* name);
void beginAs(int rank, const char* name);
void endAs(int rank, const char* name);
void instant(const char* name);
void counter(const char* name, std::int64_t value);
void send(int peer, std::int64_t bytes, const char* channel);
void recv(int peer, std::int64_t bytes, const char* channel);
void sendAs(int rank, int peer, std::int64_t bytes, const char* channel);
void recvAs(int rank, int peer, std::int64_t bytes, const char* channel);

/// RAII begin/end pair.
class Scope {
 public:
  explicit Scope(const char* name) : name_(name), rank_(threadRank()) {
    beginAs(rank_, name_);
  }
  Scope(const char* name, int as_rank) : name_(name), rank_(as_rank) {
    beginAs(rank_, name_);
  }
  ~Scope() { endAs(rank_, name_); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  const char* name_;
  int rank_;
};

/// RAII tenant attribution for the calling thread: stamps events recorded
/// within the scope with `tenant` and restores the previous label on exit
/// (scopes nest). The svc:: worker threads hold one for the whole job.
class TenantScope {
 public:
  explicit TenantScope(const char* tenant) : prev_(threadTenant()) {
    setThreadTenant(tenant);
  }
  ~TenantScope() { setThreadTenant(prev_); }
  TenantScope(const TenantScope&) = delete;
  TenantScope& operator=(const TenantScope&) = delete;

 private:
  const char* prev_;
};

/// --- merging & output ---------------------------------------------------
/// Merging and clear() must only run at quiescent points: no thread may be
/// recording concurrently (pcu::run has returned / deliverAll completed).

/// Events of one recording thread, in recording order.
struct ThreadEvents {
  int tid = 0;  ///< buffer ordinal (stable per recording thread)
  std::vector<Event> events;
};

/// All buffers merged. Thread order is registration order.
struct Merged {
  std::vector<ThreadEvents> threads;
  [[nodiscard]] std::size_t totalEvents() const {
    std::size_t n = 0;
    for (const auto& t : threads) n += t.events.size();
    return n;
  }
};

Merged snapshot();
void clear();

/// Write a Chrome trace_event JSON document ("traceEvents" array; B/E/i/C
/// phases; tid = rank for rank-attributed events, 1000+buffer for driver
/// threads; ts in microseconds).
void writeChromeTrace(std::ostream& os, const Merged& merged);

/// Output path: $PUMI_TRACE_FILE, or "pumi_trace.json".
std::string defaultTracePath();

/// Merge and write defaultTracePath() once (later calls and the
/// end-of-process auto-flush become no-ops). Returns false on I/O failure
/// or when tracing never recorded anything.
bool flushNow();

}  // namespace pcu::trace

#endif  // PUMI_PCU_TRACE_HPP
