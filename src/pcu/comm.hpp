#ifndef PUMI_PCU_COMM_HPP
#define PUMI_PCU_COMM_HPP

/// \file comm.hpp
/// \brief MPI-like message passing between thread-backed ranks.
///
/// This is the reproduction's stand-in for MPI on Blue Gene/Q: a Group owns
/// the shared state for a fixed set of ranks, each rank runs on its own
/// thread (see runtime.hpp), and a Comm is one rank's handle into the group.
/// Point-to-point messages are copied through per-rank mailboxes; collectives
/// (barrier, broadcast, reduce, allreduce, gather, allgather, exscan,
/// sparse reduce-scatter) are built on binomial trees and recursive
/// doubling over the same p2p layer, so they exercise the messaging code
/// path exactly as an application message would.
///
/// Tags >= 0 are user tags; negative tags are reserved for collectives.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pcu/buffer.hpp"
#include "pcu/failure.hpp"
#include "pcu/faults.hpp"
#include "pcu/machine.hpp"

namespace pcu {

/// Matches any source rank in recv calls.
inline constexpr int kAnySource = -1;

/// A received message: its origin rank, tag, and payload reader.
struct Message {
  int source = kAnySource;
  int tag = 0;
  InBuffer body;
};

/// Per-Comm communication statistics, used by the two-level benches.
///
/// Accounting contract (coalescing-aware): `messages_sent`/`bytes_sent` and
/// the on/off-node splits always count *logical* payloads — what the
/// application posted — so byte-conservation invariants (and the trace
/// report) are unchanged by transport-level coalescing. The `physical_*`
/// counters record what actually crossed the transport: one physical
/// message per coalesced segment, bytes including sub-message framing.
/// Without coalescing, logical == physical.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t on_node_messages = 0;
  std::uint64_t on_node_bytes = 0;
  std::uint64_t off_node_messages = 0;
  std::uint64_t off_node_bytes = 0;
  std::uint64_t physical_messages = 0;
  std::uint64_t physical_bytes = 0;

  void reset() { *this = CommStats{}; }
  CommStats& operator+=(const CommStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    on_node_messages += o.on_node_messages;
    on_node_bytes += o.on_node_bytes;
    off_node_messages += o.off_node_messages;
    off_node_bytes += o.off_node_bytes;
    physical_messages += o.physical_messages;
    physical_bytes += o.physical_bytes;
    return *this;
  }
};

namespace detail {

/// One rank's inbound message queue. Senders push; the owning rank pops with
/// (source, tag) matching semantics like MPI_Recv.
///
/// Two-queue design: producers append to a mutex-protected inbox; the
/// owning rank drains the whole inbox into a consumer-private queue in one
/// lock acquisition and then matches against that queue lock-free. A
/// receiver working through a batch of already-arrived messages therefore
/// takes the lock once per batch, not once per message, and pushMany()
/// posts a whole batch under one lock with a single wakeup.
class Mailbox {
 public:
  /// A queued message in raw (possibly framed) form.
  struct Raw {
    int source;
    int tag;
    std::vector<std::byte> bytes;
  };

  void push(int source, int tag, std::vector<std::byte> bytes);
  /// Push a batch of messages under one lock with one wakeup.
  void pushMany(std::vector<Raw> batch);
  /// Capacity hint from a collectively agreed inbound count: pre-sizes the
  /// inbox so a burst of pushes does not reallocate under the lock.
  void reserveInbound(std::size_t n);
  /// Blocks until a message matching (source-or-any, tag) arrives. When
  /// timeout_us > 0, gives up after that long and returns false (the
  /// watchdog and ARQ store-scan paths); with timeout_us == 0 it waits
  /// forever.
  bool pop(int source, int tag, long timeout_us, Raw& out);
  /// Non-blocking probe; true when a matching message is queued.
  bool probe(int source, int tag);

 private:
  bool matches(const Raw& s, int source, int tag) const {
    return (source == kAnySource || s.source == source) && s.tag == tag;
  }
  /// Owner-thread scan of the consumer-private queue; no lock.
  bool takeLocal(int source, int tag, Raw& out);
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Raw> inbox_;  ///< producer side, guarded by mutex_
  std::deque<Raw> local_;   ///< consumer side, owner thread only
};

/// Sender-side store of clean framed copies for receiver-pulled
/// retransmission (reliable mode, pcu::arq). Each framed send deposits its
/// frame here before fault injection can touch it; the receiver pulls the
/// clean copy when it detects loss (a beacon or an RTO scan) and prunes
/// the channel's prefix on every in-order delivery (the "ack").
///
/// Receiver-pulled rather than sender-driven on purpose: under the
/// bulk-synchronous patterns this library runs, a sender may be blocked in
/// a collective when its frame is lost, so it could never service a
/// retransmit *request*; a shared store the receiver reads directly cannot
/// deadlock. Sharded by destination rank so concurrent ranks do not
/// contend on one mutex.
class RetransmitStore {
 public:
  explicit RetransmitStore(int ranks)
      : shards_(static_cast<std::size_t>(ranks)) {}

  /// Keep a clean framed copy of (src -> dst, tag, seq).
  void store(int src, int dst, int tag, std::uint64_t seq,
             const std::vector<std::byte>& framed);
  /// Receiver acknowledgement: drop channel frames with seq < upto.
  void ack(int src, int dst, int tag, std::uint64_t upto);
  /// Fetch one stored frame; nullopt when absent (never stored or pruned).
  std::optional<std::vector<std::byte>> fetch(int dst, int src, int tag,
                                              std::uint64_t seq);
  struct PendingFrame {
    int src;
    std::uint64_t seq;
    std::vector<std::byte> bytes;
  };
  /// Every stored frame addressed to `dst` on `tag` (any source when
  /// src == kAnySource) whose seq is not below the receiver's expectation
  /// (queried per source channel): the RTO scan's pull candidates, in
  /// (source, seq) order.
  std::vector<PendingFrame> pending(
      int dst, int src, int tag,
      const std::function<std::uint64_t(int)>& expected);

 private:
  struct Shard {
    std::mutex mutex;
    /// channelKey(src, tag) -> seq -> clean framed bytes.
    std::unordered_map<std::uint64_t,
                       std::map<std::uint64_t, std::vector<std::byte>>>
        chans;
  };
  std::vector<Shard> shards_;
};

}  // namespace detail

class Comm;

/// Shared state for a fixed set of communicating ranks. Every group is
/// attached to a faults::Domain (the process default unless one is given):
/// all fault-injection, framing, watchdog and heartbeat-deadline decisions
/// made through the group's Comms consult that domain, so subgroups with
/// their own domain (Comm::split with isolate_faults) are chaos-isolated
/// from their parent and siblings.
class Group {
 public:
  explicit Group(int size, Machine machine = Machine(),
                 std::shared_ptr<faults::Domain> domain = nullptr);
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] const Machine& machine() const { return machine_; }

 private:
  friend class Comm;
  int size_;
  Machine machine_;
  std::shared_ptr<faults::Domain> domain_;
  std::vector<detail::Mailbox> boxes_;
  detail::RetransmitStore arq_store_{size_};
  failure::Detector detector_{size_};
  // Rendezvous used by split() to carve disjoint subgroups without any
  // message traffic (the same shared-state pattern as shrink()/grow(), so
  // it composes with an armed detector). Guarded by split_mutex_.
  std::mutex split_mutex_;
  std::condition_variable split_cv_;
  int split_arrived_ = 0;
  std::vector<std::array<int, 2>> split_entries_;  // (color, key) per rank
  std::map<int, std::shared_ptr<Group>> split_groups_;  // color -> subgroup
  int split_taken_ = 0;
  // Rendezvous used by shrink() to agree on the survivor group without any
  // collective (the dead rank would deadlock one). Guarded by shrink_mutex_.
  std::mutex shrink_mutex_;
  std::condition_variable shrink_cv_;
  std::vector<char> shrink_arrived_;
  std::shared_ptr<Group> shrink_group_;
  std::vector<int> shrink_survivors_;
  std::size_t shrink_taken_ = 0;
  // Rendezvous used by grow() — shrink's inverse: every live rank arrives,
  // the first completer publishes the expanded group. Guarded by
  // grow_mutex_.
  std::mutex grow_mutex_;
  std::condition_variable grow_cv_;
  int grow_arrived_ = 0;
  int grow_count_ = -1;  // joiner count fixed by the first arrival
  std::shared_ptr<Group> grow_group_;
  int grow_taken_ = 0;
  bool grow_poisoned_ = false;  // a mismatched k dooms the whole rendezvous
  // Joiners announced by a consumed join=K@P token, waiting for the group
  // to reach a quiescent point and call grow(). Any rank may observe it.
  std::atomic<int> join_pending_{0};
};

/// One rank's handle into a Group. All member calls are made by the owning
/// rank's thread only; distinct Comms may be used concurrently.
class Comm {
 public:
  Comm(std::shared_ptr<Group> group, int rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return group_->size(); }
  [[nodiscard]] const Machine& machine() const { return group_->machine(); }
  [[nodiscard]] bool sameNode(int other) const {
    return machine().sameNode(rank_, other);
  }

  /// --- point to point -------------------------------------------------
  /// While a fault plan or checksum-verify mode is active
  /// (pcu::faults::framingEnabled()), user-tag messages are framed with a
  /// sequence number and CRC: recv() then verifies integrity, restores
  /// per-channel FIFO order under injected reordering, and throws a
  /// structured pcu::Error on corruption, duplication, or watchdog timeout.
  void send(int dest, int tag, const OutBuffer& buf);
  void send(int dest, int tag, std::vector<std::byte> bytes);
  /// Post one *physical* message whose payload packs `logical_count`
  /// logical sub-messages totalling `logical_bytes` payload bytes
  /// (phasedExchange's coalescing fast path). Stats count the logical
  /// payloads on the logical/on-node/off-node counters and one message on
  /// the physical counters; no trace event is recorded — the caller
  /// attributes the logical payloads itself. Framing (when active) wraps
  /// the whole segment: one seq/CRC per physical message.
  void sendCoalesced(int dest, int tag, std::vector<std::byte> segment,
                     std::uint64_t logical_count, std::uint64_t logical_bytes);
  Message recv(int source, int tag);
  /// recv() without the per-message trace record: receives one physical
  /// (possibly coalesced) message whose logical sub-messages the caller
  /// traces individually after unpacking.
  Message recvUntraced(int source, int tag);
  bool probe(int source, int tag);
  /// Capacity hint for this rank's mailbox (see Mailbox::reserveInbound).
  void reserveInbound(std::size_t n);
  /// Post any delay-injected messages still held back by the fault layer.
  /// Called automatically at recv() entry and by phasedExchange after its
  /// posting loop; harmless no-op otherwise.
  void flushDelayed();

  /// --- collectives (every rank of the group must call) ----------------
  void barrier();
  /// Root's buffer is delivered to all ranks.
  std::vector<std::byte> broadcast(int root, std::vector<std::byte> bytes);
  template <typename T>
  T broadcastValue(int root, T value);

  /// Element-wise reduction of equal-length vectors; result valid on root.
  template <typename T, typename Op>
  std::vector<T> reduce(int root, std::vector<T> local, Op op);
  template <typename T, typename Op>
  std::vector<T> allreduce(std::vector<T> local, Op op);
  template <typename T>
  T allreduceSum(T v);
  template <typename T>
  T allreduceMin(T v);
  template <typename T>
  T allreduceMax(T v);

  /// Concatenation of every rank's bytes in rank order, valid on root.
  std::vector<std::vector<std::byte>> gather(int root,
                                             std::vector<std::byte> bytes);
  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> bytes);
  template <typename T>
  std::vector<T> allgatherValue(T v);

  /// Exclusive prefix sum: rank r receives sum of values on ranks < r.
  template <typename T>
  T exscanSum(T v);

  /// Sparse reduce-scatter: every rank passes (destination rank, value)
  /// contributions; each rank receives the sum of every value contributed
  /// for *it*, across all ranks. Implemented as a hypercube recursive
  /// halving over the sparse maps, so collective traffic is proportional to
  /// the number of contributed entries (times at most log2 P hops) — not to
  /// P. This is how phasedExchange agrees on per-rank inbound message
  /// counts without shipping a size-P vector through an allreduce.
  long reduceScatterSum(const std::vector<std::pair<int, long>>& contributions);

  /// --- communicator splitting -----------------------------------------
  /// Options for split(). The default inherits the parent group's fault
  /// domain (subgroup traffic keeps obeying the ambient plan — the
  /// historical splitByNode/splitByCore behavior); isolate_faults gives the
  /// subgroup a *fresh, empty* faults::Domain instead, so PUMI_FAULTS
  /// plans, reliable-delivery overrides, watchdogs and heartbeat deadlines
  /// installed for one subgroup never leak into a sibling. The multi-tenant
  /// service layer (svc::) splits with isolate_faults = true per tenant.
  struct SplitOptions {
    bool isolate_faults = false;
  };

  /// Collective over the whole group: ranks with equal color form a
  /// subgroup; within it ranks are ordered by (key, rank). Returns the new
  /// comm. Implemented as a shared-state rendezvous (no message traffic),
  /// generation-safe: consecutive splits on the same group are serialized
  /// so a fast rank cannot re-enroll into a draining round. Each subgroup
  /// gets fresh mailboxes, a fresh ARQ store, and its own failure detector
  /// (armed with the parent's deadline when the parent's was armed — unless
  /// the subgroup is fault-isolated, in which case its detector arms from
  /// its own domain's plan). The subgroup inherits the parent machine's
  /// node topology when all members share a node, else a flat machine.
  Comm split(int color, int key) { return split(color, key, SplitOptions{}); }
  Comm split(int color, int key, const SplitOptions& opts);

  /// Per-node communicator according to the machine model.
  Comm splitByNode() { return split(machine().nodeOf(rank_), rank_); }
  /// Inter-node communicator containing core 0 of each node; other ranks
  /// receive a comm of their node peers with identical semantics but should
  /// not use it for network traffic. Color is the core index.
  Comm splitByCore() { return split(machine().coreOf(rank_), rank_); }

  /// --- rank-failure tolerance (pcu/failure.hpp) -----------------------
  /// The group's heartbeat failure detector. Armed lazily from the fault
  /// plan's deadline; unarmed, every check below is one relaxed load.
  [[nodiscard]] failure::Detector& detector() { return group_->detector_; }
  /// Hardened phase boundary: beats this rank's heartbeat and consumes a
  /// scheduled kill=/hang= fault targeting (this rank, this boundary index).
  /// A kill throws failure::RankKilled immediately; a hang goes silent
  /// (no heartbeats) until the group is revoked, then throws the same —
  /// peers must detect the silence through the deadline. Called by
  /// phasedExchange on its hardened path.
  void rankFaultPoint();
  /// ULFM-style shrink: after revocation, every *surviving* rank calls this
  /// to agree on the survivor set and obtain a fresh group with dense ranks
  /// (survivor order). Ranks that never arrive are declared dead by the
  /// deadline. The returned comm has fresh mailboxes (stale in-flight
  /// traffic from the old group is discarded) and an armed detector when
  /// this group's was armed.
  Comm shrink();
  /// Elastic scale-out, shrink()'s inverse: every live rank calls grow(k)
  /// at a quiescent point (no in-flight traffic) to rendezvous on an
  /// expanded group of size()+k ranks. Existing ranks keep their numbers
  /// (the numbering stays dense: newcomers take size()..size()+k-1), the
  /// new group has fresh mailboxes and a fresh per-peer ARQ store (clean
  /// coalescing/sequence state for every channel touching a newcomer), and
  /// its detector is armed when this group's was. Newcomer ranks obtain
  /// their handles via Comm(grown.groupHandle(), new_rank) — see
  /// pcu::spawnJoined in runtime.hpp. Every caller must pass the same k.
  Comm grow(int k);
  /// Joiners announced by a consumed join=K@P fault-plan token, waiting for
  /// the group to admit them; grow() resets it to zero. Any rank of the
  /// group observes the same value (one relaxed load).
  [[nodiscard]] int joinPending() const {
    return group_->join_pending_.load(std::memory_order_relaxed);
  }
  /// The shared group handle — what newcomer threads need to construct
  /// their own Comm after a grow (the Comm(group, rank) constructor is
  /// public; this accessor just shares the pointer).
  [[nodiscard]] std::shared_ptr<Group> groupHandle() const { return group_; }

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void resetStats() { stats_.reset(); }

  /// --- fault domain ---------------------------------------------------
  /// The group's fault domain: every framing/injection/watchdog decision on
  /// this comm's paths consults it (not the process default), so a
  /// fault-isolated subgroup is chaos-scoped end to end.
  [[nodiscard]] faults::Domain& faultDomain() const { return *group_->domain_; }
  /// Shared handle to the group's domain — what a service worker thread
  /// installs as its ambient domain (faults::DomainScope) so code above the
  /// comm layer (dist::Network, trace consumers) sees the same scoping.
  [[nodiscard]] std::shared_ptr<faults::Domain> faultDomainHandle() const {
    return group_->domain_;
  }
  /// Whether this group's traffic is framed (its domain's framing gate or
  /// its reliable override) — the group-scoped analogue of
  /// faults::framingEnabled().
  [[nodiscard]] bool framingEnabled() const {
    return group_->domain_->framingEnabled();
  }

  /// Switch reliable delivery (pcu::arq) on or off for the whole process —
  /// convenience forwarder to arq::setReliable, kept here because the ARQ
  /// layer lives inside Comm's framed send/recv paths. Only call at
  /// quiescent points (no in-flight messages).
  static void setReliable(bool on);

 private:
  // Internal tags for collectives; user tags are >= 0.
  enum InternalTag : int {
    kTagBarrierUp = -1,
    kTagBarrierDown = -2,
    kTagBcast = -3,
    kTagReduce = -4,
    kTagGather = -5,
    kTagScan = -6,
    kTagSplit = -7,
    kTagAllreduce = -8,
    kTagAllgather = -9,
    kTagCount = -10,
  };
  void sendInternal(int dest, int tag, std::vector<std::byte> bytes);
  /// Framed send path (active while faults::framingEnabled()): assigns the
  /// channel sequence number, applies the fault decision, pushes frames.
  void sendFramed(int dest, int tag, std::vector<std::byte> payload);
  /// Frame (seq + fault decision) and push one already-accounted payload.
  void postFramed(int dest, int tag, std::vector<std::byte> payload);
  /// Stats + trace accounting for one outgoing payload.
  void accountSend(int dest, std::size_t payload_bytes);
  /// Stats accounting for one coalesced segment (logical counters get the
  /// payload totals, physical counters get the single segment); no trace.
  void accountSendCoalesced(int dest, std::uint64_t logical_count,
                            std::uint64_t logical_bytes,
                            std::size_t physical_bytes);
  /// Raw mailbox push, no accounting.
  void push(int dest, int tag, std::vector<std::byte> bytes);
  /// Blocking pop with the faults watchdog applied; throws
  /// Error(kTimeout) naming the channel and this rank's last-known phase.
  detail::Mailbox::Raw popWatchdog(int source, int tag);
  Message recvImpl(int source, int tag, bool traced);
  /// Framed receive: verify, deduplicate, restore per-channel order.
  Message recvFramed(int source, int tag, bool traced);
  /// Reliable framed receive (arq::enabled()): same ordering contract as
  /// recvFramed, but corruption/duplication/loss are *recovered* — corrupt
  /// frames discarded and re-fetched, duplicates silently dropped, lost
  /// frames pulled from the group's retransmit store (loss beacons make
  /// that immediate; a capped-backoff RTO scan covers delayed traffic).
  /// Only a retransmit budget exhausted under a permanent fault converts
  /// to Error(kMessageLost).
  Message recvReliable(int source, int tag, bool traced);
  /// Model retransmission attempts of one stored frame across the faulty
  /// network (attempt-salted fault decisions); pushes the clean frame into
  /// this rank's mailbox on success. Throws Error(kMessageLost) when the
  /// retry budget is exhausted.
  void pullRetransmit(int src, int tag, std::uint64_t seq,
                      std::vector<std::byte> framed);
  /// Serve a stashed reordered message that has become current; nullopt
  /// when none matches.
  std::optional<Message> serveStash(int source, int tag, bool traced);
  /// Throw Error(kRankFailed) naming the first dead rank of this group's
  /// detector on channel (source, tag).
  [[noreturn]] void throwRankFailed(int source, int tag) const;

  [[nodiscard]] static std::uint64_t channelKey(int peer, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  std::shared_ptr<Group> group_;
  int rank_;
  CommStats stats_;
  // Framed-channel state; touched only while framing is enabled. All
  // members are used by the owning rank's thread only.
  std::unordered_map<std::uint64_t, std::uint64_t> send_seq_;
  std::unordered_map<std::uint64_t, std::uint64_t> recv_seq_;
  struct Stashed {
    Message msg;
    std::uint64_t seq;
  };
  std::vector<Stashed> reorder_stash_;
  struct Delayed {
    int dest;
    int tag;
    std::vector<std::byte> bytes;
  };
  std::vector<Delayed> delayed_;
  /// Hardened phase boundaries this rank has passed (rankFaultPoint calls);
  /// advances only while a kill/hang is scheduled, so the kill=R@P phase
  /// index is deterministic.
  std::uint64_t phased_calls_ = 0;
};

/// ---- templated member implementations ---------------------------------

template <typename T>
T Comm::broadcastValue(int root, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  OutBuffer b;
  b.pack(value);
  auto out = broadcast(root, std::move(b).take());
  InBuffer in(std::move(out));
  return in.unpack<T>();
}

template <typename T, typename Op>
std::vector<T> Comm::reduce(int root, std::vector<T> local, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Binomial tree rooted at `root`: relabel ranks so root becomes 0.
  const int n = size();
  const int me = (rank() - root + n) % n;
  for (int step = 1; step < n; step <<= 1) {
    if (me & step) {
      OutBuffer b;
      b.packVector(local);
      const int parent = ((me - step) + root) % n;
      sendInternal(parent, kTagReduce, std::move(b).take());
      break;
    }
    const int child = me + step;
    if (child < n) {
      Message m = recv((child + root) % n, kTagReduce);
      auto theirs = m.body.template unpackVector<T>();
      assert(theirs.size() == local.size());
      for (std::size_t i = 0; i < local.size(); ++i)
        local[i] = op(local[i], theirs[i]);
    }
  }
  return local;
}

template <typename T, typename Op>
std::vector<T> Comm::allreduce(std::vector<T> local, Op op) {
  // Recursive doubling: log2(P) rounds of pairwise exchange instead of a
  // reduce-to-root followed by a broadcast, halving both the latency depth
  // and the root's serialization bottleneck. `op` must be associative and
  // commutative (sum/min/max — everything this library reduces with).
  // Non-power-of-two sizes fold the extra ranks into the power-of-two set
  // up front and ship them the result afterwards (MPICH-style).
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = size();
  if (n == 1) return local;
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;
  auto packed = [&]() {
    OutBuffer b;
    b.packVector(local);
    return std::move(b).take();
  };
  auto combine = [&](Message m) {
    auto theirs = m.body.template unpackVector<T>();
    assert(theirs.size() == local.size());
    for (std::size_t i = 0; i < local.size(); ++i)
      local[i] = op(local[i], theirs[i]);
  };
  if (rank_ >= pof2) {
    // Extra rank: contribute to the partner, then wait for its result.
    sendInternal(rank_ - pof2, kTagAllreduce, packed());
    Message m = recv(rank_ - pof2, kTagAllreduce);
    return m.body.template unpackVector<T>();
  }
  if (rank_ < rem) combine(recv(rank_ + pof2, kTagAllreduce));
  for (int mask = 1; mask < pof2; mask <<= 1) {
    const int peer = rank_ ^ mask;
    sendInternal(peer, kTagAllreduce, packed());
    combine(recv(peer, kTagAllreduce));
  }
  if (rank_ < rem) sendInternal(rank_ + pof2, kTagAllreduce, packed());
  return local;
}

template <typename T>
T Comm::allreduceSum(T v) {
  return allreduce(std::vector<T>{v}, [](T a, T b) { return a + b; })[0];
}
template <typename T>
T Comm::allreduceMin(T v) {
  return allreduce(std::vector<T>{v},
                   [](T a, T b) { return a < b ? a : b; })[0];
}
template <typename T>
T Comm::allreduceMax(T v) {
  return allreduce(std::vector<T>{v},
                   [](T a, T b) { return a > b ? a : b; })[0];
}

template <typename T>
std::vector<T> Comm::allgatherValue(T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  OutBuffer b;
  b.pack(v);
  auto parts = allgather(std::move(b).take());
  std::vector<T> out;
  out.reserve(parts.size());
  for (auto& p : parts) {
    InBuffer in(std::move(p));
    out.push_back(in.template unpack<T>());
  }
  return out;
}

template <typename T>
T Comm::exscanSum(T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Distance-doubling scan (Hillis–Steele): after round k this rank's
  // inclusive partial covers the 2^k ranks ending at it, so log2(P) rounds
  // replace the old linear chain's O(P) latency. The exclusive prefix is
  // carried alongside (excl = incl - v, maintained without subtraction so
  // any additive T works). Works for every P, not just powers of two.
  const int n = size();
  T incl = v;
  T excl{};
  for (int mask = 1; mask < n; mask <<= 1) {
    if (rank_ + mask < n) {
      OutBuffer b;
      b.pack(incl);
      sendInternal(rank_ + mask, kTagScan, std::move(b).take());
    }
    if (rank_ - mask >= 0) {
      Message m = recv(rank_ - mask, kTagScan);
      const T theirs = m.body.template unpack<T>();
      incl = static_cast<T>(theirs + incl);
      excl = static_cast<T>(theirs + excl);
    }
  }
  return excl;
}

}  // namespace pcu

#endif  // PUMI_PCU_COMM_HPP
