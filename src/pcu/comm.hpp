#ifndef PUMI_PCU_COMM_HPP
#define PUMI_PCU_COMM_HPP

/// \file comm.hpp
/// \brief MPI-like message passing between thread-backed ranks.
///
/// This is the reproduction's stand-in for MPI on Blue Gene/Q: a Group owns
/// the shared state for a fixed set of ranks, each rank runs on its own
/// thread (see runtime.hpp), and a Comm is one rank's handle into the group.
/// Point-to-point messages are copied through per-rank mailboxes; collectives
/// (barrier, broadcast, reduce, allreduce, gather, allgather, exscan) are
/// built on binomial trees over the same p2p layer, so they exercise the
/// messaging code path exactly as an application message would.
///
/// Tags >= 0 are user tags; negative tags are reserved for collectives.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pcu/buffer.hpp"
#include "pcu/machine.hpp"

namespace pcu {

/// Matches any source rank in recv calls.
inline constexpr int kAnySource = -1;

/// A received message: its origin rank, tag, and payload reader.
struct Message {
  int source = kAnySource;
  int tag = 0;
  InBuffer body;
};

/// Per-Comm communication statistics, used by the two-level benches.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t on_node_messages = 0;
  std::uint64_t on_node_bytes = 0;
  std::uint64_t off_node_messages = 0;
  std::uint64_t off_node_bytes = 0;

  void reset() { *this = CommStats{}; }
  CommStats& operator+=(const CommStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    on_node_messages += o.on_node_messages;
    on_node_bytes += o.on_node_bytes;
    off_node_messages += o.off_node_messages;
    off_node_bytes += o.off_node_bytes;
    return *this;
  }
};

namespace detail {

/// One rank's inbound message queue. Senders push; the owning rank pops with
/// (source, tag) matching semantics like MPI_Recv.
class Mailbox {
 public:
  /// A queued message in raw (possibly framed) form.
  struct Raw {
    int source;
    int tag;
    std::vector<std::byte> bytes;
  };

  void push(int source, int tag, std::vector<std::byte> bytes);
  /// Blocks until a message matching (source-or-any, tag) arrives. When
  /// timeout_ms > 0, gives up after that long and returns false (the
  /// watchdog path); with timeout_ms == 0 it waits forever.
  bool pop(int source, int tag, int timeout_ms, Raw& out);
  /// Non-blocking probe; true when a matching message is queued.
  bool probe(int source, int tag);

 private:
  bool matches(const Raw& s, int source, int tag) const {
    return (source == kAnySource || s.source == source) && s.tag == tag;
  }
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Raw> queue_;
};

}  // namespace detail

class Comm;

/// Shared state for a fixed set of communicating ranks.
class Group {
 public:
  explicit Group(int size, Machine machine = Machine());
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] const Machine& machine() const { return machine_; }

 private:
  friend class Comm;
  int size_;
  Machine machine_;
  std::vector<detail::Mailbox> boxes_;
  // Scratch used by split() to publish subgroup pointers across ranks.
  std::mutex split_mutex_;
  std::vector<std::shared_ptr<Group>> split_scratch_;
};

/// One rank's handle into a Group. All member calls are made by the owning
/// rank's thread only; distinct Comms may be used concurrently.
class Comm {
 public:
  Comm(std::shared_ptr<Group> group, int rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return group_->size(); }
  [[nodiscard]] const Machine& machine() const { return group_->machine(); }
  [[nodiscard]] bool sameNode(int other) const {
    return machine().sameNode(rank_, other);
  }

  /// --- point to point -------------------------------------------------
  /// While a fault plan or checksum-verify mode is active
  /// (pcu::faults::framingEnabled()), user-tag messages are framed with a
  /// sequence number and CRC: recv() then verifies integrity, restores
  /// per-channel FIFO order under injected reordering, and throws a
  /// structured pcu::Error on corruption, duplication, or watchdog timeout.
  void send(int dest, int tag, const OutBuffer& buf);
  void send(int dest, int tag, std::vector<std::byte> bytes);
  Message recv(int source, int tag);
  bool probe(int source, int tag);
  /// Post any delay-injected messages still held back by the fault layer.
  /// Called automatically at recv() entry and by phasedExchange after its
  /// posting loop; harmless no-op otherwise.
  void flushDelayed();

  /// --- collectives (every rank of the group must call) ----------------
  void barrier();
  /// Root's buffer is delivered to all ranks.
  std::vector<std::byte> broadcast(int root, std::vector<std::byte> bytes);
  template <typename T>
  T broadcastValue(int root, T value);

  /// Element-wise reduction of equal-length vectors; result valid on root.
  template <typename T, typename Op>
  std::vector<T> reduce(int root, std::vector<T> local, Op op);
  template <typename T, typename Op>
  std::vector<T> allreduce(std::vector<T> local, Op op);
  template <typename T>
  T allreduceSum(T v);
  template <typename T>
  T allreduceMin(T v);
  template <typename T>
  T allreduceMax(T v);

  /// Concatenation of every rank's bytes in rank order, valid on root.
  std::vector<std::vector<std::byte>> gather(int root,
                                             std::vector<std::byte> bytes);
  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> bytes);
  template <typename T>
  std::vector<T> allgatherValue(T v);

  /// Exclusive prefix sum: rank r receives sum of values on ranks < r.
  template <typename T>
  T exscanSum(T v);

  /// --- communicator splitting -----------------------------------------
  /// Ranks with equal color form a subgroup; ranks ordered by (key, rank).
  /// Returns the new comm. The subgroup inherits a single-node machine (on
  /// the assumption that splits are used to form per-node comms); callers
  /// needing a different topology may remap afterwards.
  Comm split(int color, int key);

  /// Per-node communicator according to the machine model.
  Comm splitByNode() { return split(machine().nodeOf(rank_), rank_); }
  /// Inter-node communicator containing core 0 of each node; other ranks
  /// receive a comm of their node peers with identical semantics but should
  /// not use it for network traffic. Color is the core index.
  Comm splitByCore() { return split(machine().coreOf(rank_), rank_); }

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void resetStats() { stats_.reset(); }

 private:
  // Internal tags for collectives; user tags are >= 0.
  enum InternalTag : int {
    kTagBarrierUp = -1,
    kTagBarrierDown = -2,
    kTagBcast = -3,
    kTagReduce = -4,
    kTagGather = -5,
    kTagScan = -6,
    kTagSplit = -7,
  };
  void sendInternal(int dest, int tag, std::vector<std::byte> bytes);
  /// Framed send path (active while faults::framingEnabled()): assigns the
  /// channel sequence number, applies the fault decision, pushes frames.
  void sendFramed(int dest, int tag, std::vector<std::byte> payload);
  /// Stats + trace accounting for one outgoing payload.
  void accountSend(int dest, std::size_t payload_bytes);
  /// Raw mailbox push, no accounting.
  void push(int dest, int tag, std::vector<std::byte> bytes);
  /// Blocking pop with the faults watchdog applied; throws
  /// Error(kTimeout) naming the channel and this rank's last-known phase.
  detail::Mailbox::Raw popWatchdog(int source, int tag);
  /// Framed receive: verify, deduplicate, restore per-channel order.
  Message recvFramed(int source, int tag);

  [[nodiscard]] static std::uint64_t channelKey(int peer, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  std::shared_ptr<Group> group_;
  int rank_;
  CommStats stats_;
  // Framed-channel state; touched only while framing is enabled. All
  // members are used by the owning rank's thread only.
  std::unordered_map<std::uint64_t, std::uint64_t> send_seq_;
  std::unordered_map<std::uint64_t, std::uint64_t> recv_seq_;
  struct Stashed {
    Message msg;
    std::uint64_t seq;
  };
  std::vector<Stashed> reorder_stash_;
  struct Delayed {
    int dest;
    int tag;
    std::vector<std::byte> bytes;
  };
  std::vector<Delayed> delayed_;
};

/// ---- templated member implementations ---------------------------------

template <typename T>
T Comm::broadcastValue(int root, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  OutBuffer b;
  b.pack(value);
  auto out = broadcast(root, std::move(b).take());
  InBuffer in(std::move(out));
  return in.unpack<T>();
}

template <typename T, typename Op>
std::vector<T> Comm::reduce(int root, std::vector<T> local, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Binomial tree rooted at `root`: relabel ranks so root becomes 0.
  const int n = size();
  const int me = (rank() - root + n) % n;
  for (int step = 1; step < n; step <<= 1) {
    if (me & step) {
      OutBuffer b;
      b.packVector(local);
      const int parent = ((me - step) + root) % n;
      sendInternal(parent, kTagReduce, std::move(b).take());
      break;
    }
    const int child = me + step;
    if (child < n) {
      Message m = recv((child + root) % n, kTagReduce);
      auto theirs = m.body.template unpackVector<T>();
      assert(theirs.size() == local.size());
      for (std::size_t i = 0; i < local.size(); ++i)
        local[i] = op(local[i], theirs[i]);
    }
  }
  return local;
}

template <typename T, typename Op>
std::vector<T> Comm::allreduce(std::vector<T> local, Op op) {
  auto reduced = reduce(0, std::move(local), op);
  OutBuffer b;
  b.packVector(reduced);
  auto bytes = broadcast(0, std::move(b).take());
  InBuffer in(std::move(bytes));
  return in.template unpackVector<T>();
}

template <typename T>
T Comm::allreduceSum(T v) {
  return allreduce(std::vector<T>{v}, [](T a, T b) { return a + b; })[0];
}
template <typename T>
T Comm::allreduceMin(T v) {
  return allreduce(std::vector<T>{v},
                   [](T a, T b) { return a < b ? a : b; })[0];
}
template <typename T>
T Comm::allreduceMax(T v) {
  return allreduce(std::vector<T>{v},
                   [](T a, T b) { return a > b ? a : b; })[0];
}

template <typename T>
std::vector<T> Comm::allgatherValue(T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  OutBuffer b;
  b.pack(v);
  auto parts = allgather(std::move(b).take());
  std::vector<T> out;
  out.reserve(parts.size());
  for (auto& p : parts) {
    InBuffer in(std::move(p));
    out.push_back(in.template unpack<T>());
  }
  return out;
}

template <typename T>
T Comm::exscanSum(T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Linear chain scan: rank r receives the prefix from r-1, adds its value,
  // forwards to r+1. O(P) latency is acceptable at in-process scales and
  // keeps the implementation transparently correct.
  T prefix{};
  if (rank() > 0) {
    Message m = recv(rank() - 1, kTagScan);
    prefix = m.body.template unpack<T>();
  }
  if (rank() + 1 < size()) {
    OutBuffer b;
    b.pack(static_cast<T>(prefix + v));
    sendInternal(rank() + 1, kTagScan, std::move(b).take());
  }
  return prefix;
}

}  // namespace pcu

#endif  // PUMI_PCU_COMM_HPP
