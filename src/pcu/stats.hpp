#ifndef PUMI_PCU_STATS_HPP
#define PUMI_PCU_STATS_HPP

/// \file stats.hpp
/// \brief Aggregation of pcu::trace events into the per-phase, per-rank
/// report the paper's performance-measurement component calls for: for
/// every traced phase the min/max/mean wall-time across ranks and the
/// imbalance (max/mean), and for every message channel the message and
/// byte volume, total and per rank pair.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "pcu/trace.hpp"

namespace pcu {

/// Wall-time statistics of one phase across the ranks that recorded it.
/// "Rank" here is whatever the events were attributed to: comm ranks under
/// pcu::run, part ids under dist::Network, -1 for the driver thread.
struct PhaseStat {
  std::string name;
  int ranks = 0;                ///< distinct ranks with at least one scope
  std::uint64_t calls = 0;      ///< total begin/end pairs
  double total_seconds = 0.0;   ///< summed across ranks
  double min_seconds = 0.0;     ///< lightest rank's total
  double max_seconds = 0.0;     ///< heaviest rank's total
  double mean_seconds = 0.0;    ///< total / ranks
  double imbalance = 1.0;       ///< max / mean (1.0 = perfectly balanced)
};

/// Message volume of one channel ("pcu", "net", ...), whole run.
struct ChannelStat {
  std::string channel;
  std::uint64_t send_messages = 0;
  std::uint64_t send_bytes = 0;
  std::uint64_t recv_messages = 0;
  std::uint64_t recv_bytes = 0;
};

/// Message volume between one ordered (src, dst) rank pair on one channel.
/// In a complete (drained) trace, send totals recorded at src equal recv
/// totals recorded at dst — the consistency test_trace asserts.
struct PairStat {
  std::string channel;
  int src = -1;
  int dst = -1;
  std::uint64_t send_messages = 0;
  std::uint64_t send_bytes = 0;
  std::uint64_t recv_messages = 0;
  std::uint64_t recv_bytes = 0;
};

/// Aggregate of one named counter series (trace::counter), whole run —
/// e.g. the failure detector's fd:heartbeats / fd:suspicions /
/// fd:suspicion_latency_us / fd:shrink_events.
struct CounterStat {
  std::string name;
  std::uint64_t samples = 0;
  std::int64_t last = 0;  ///< final recorded value (totals report this)
  std::int64_t min = 0;
  std::int64_t max = 0;
};

struct TraceReport {
  std::vector<PhaseStat> phases;      ///< sorted by max_seconds, descending
  std::vector<ChannelStat> channels;  ///< sorted by channel name
  std::vector<PairStat> pairs;        ///< sorted by (channel, src, dst)
  std::vector<CounterStat> counters;  ///< sorted by counter name
};

/// Aggregate a merged event stream. Begin/end events are matched per
/// recording thread (scopes never straddle threads); an unmatched begin at
/// the end of a thread's stream is ignored.
TraceReport buildTraceReport(const trace::Merged& merged);

/// Aggregate only the events stamped with `tenant` (trace::TenantScope /
/// trace::setThreadTenant) — the multi-tenant service's per-tenant view.
/// Events with no tenant label are excluded; an unknown tenant yields an
/// empty report.
TraceReport buildTraceReport(const trace::Merged& merged,
                             std::string_view tenant);

/// Aggregate the live trace buffers (quiescent threads only).
TraceReport buildTraceReport();

/// Print the per-phase table and the per-channel volume table.
void printTraceReport(const TraceReport& report, std::ostream& os);
void printTraceReport(const TraceReport& report);

}  // namespace pcu

#endif  // PUMI_PCU_STATS_HPP
