#include "pcu/trace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_set>

#include "pcu/counters.hpp"

namespace pcu::trace {

namespace {

/// One thread's event storage: a chunked append-only log. The owning
/// thread appends without locking (the chunk list mutex is taken only when
/// a chunk fills, once per kChunkEvents events); readers synchronize with
/// the writer through the acquire/release `count_` and see chunk pointers
/// through the mutex.
class Buffer {
 public:
  static constexpr std::size_t kChunkEvents = 1024;

  explicit Buffer(int tid) : tid_(tid) {}

  void push(const Event& e) {
    const std::size_t idx = count_.load(std::memory_order_relaxed);
    const std::size_t chunk = idx / kChunkEvents;
    if (chunk == nchunks_) {
      std::lock_guard<std::mutex> lock(chunks_mutex_);
      chunks_.push_back(std::make_unique<Chunk>());
      ++nchunks_;
    }
    (*chunks_[chunk])[idx % kChunkEvents] = e;
    count_.store(idx + 1, std::memory_order_release);
  }

  [[nodiscard]] ThreadEvents copy() {
    ThreadEvents out;
    out.tid = tid_;
    const std::size_t n = count_.load(std::memory_order_acquire);
    out.events.reserve(n);
    std::lock_guard<std::mutex> lock(chunks_mutex_);
    for (std::size_t i = 0; i < n; ++i)
      out.events.push_back((*chunks_[i / kChunkEvents])[i % kChunkEvents]);
    return out;
  }

  /// Quiescent threads only (see trace.hpp).
  void reset() {
    std::lock_guard<std::mutex> lock(chunks_mutex_);
    chunks_.clear();
    nchunks_ = 0;
    count_.store(0, std::memory_order_release);
  }

 private:
  using Chunk = std::array<Event, kChunkEvents>;
  int tid_;
  std::atomic<std::size_t> count_{0};
  std::size_t nchunks_ = 0;  // written by the owning thread only
  std::mutex chunks_mutex_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Buffer>> buffers;
};

Registry& registry() {
  static Registry r;
  return r;
}

struct InternPool {
  std::mutex mutex;
  std::unordered_set<std::string> strings;
};

InternPool& internPool() {
  static InternPool p;
  return p;
}

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_flushed{false};

bool envTruthy(const char* v) {
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s != "0" && s != "false" && s != "off" && s != "no";
}

/// Latch PUMI_TRACE once; when set, arrange the end-of-process flush. The
/// registry and intern pool are touched first so their function-local
/// statics outlive the atexit handler (reverse destruction order).
bool envEnabled() {
  static const bool from_env = [] {
    (void)registry();
    (void)internPool();
    const bool on = envTruthy(std::getenv("PUMI_TRACE"));
    if (on) {
      g_enabled.store(true, std::memory_order_relaxed);
      std::atexit([] { (void)flushNow(); });
    }
    return on;
  }();
  return from_env;
}

thread_local Buffer* tls_buffer = nullptr;
thread_local int tls_rank = -1;
thread_local const char* tls_tenant = nullptr;

/// Last begin()-phase per rank, for watchdog failure reports. Fixed size:
/// ranks beyond the window are simply not tracked.
constexpr int kPhaseRanks = 1024;
std::array<std::atomic<const char*>, kPhaseRanks>& phaseRegistry() {
  static std::array<std::atomic<const char*>, kPhaseRanks> a{};
  return a;
}

void notePhase(int rank, const char* name) {
  if (rank >= 0 && rank < kPhaseRanks)
    phaseRegistry()[static_cast<std::size_t>(rank)].store(
        name, std::memory_order_relaxed);
}

Buffer* threadBuffer() {
  if (tls_buffer == nullptr) {
    auto& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(
        std::make_unique<Buffer>(static_cast<int>(r.buffers.size())));
    tls_buffer = r.buffers.back().get();
  }
  return tls_buffer;
}

void record(Kind kind, int rank, int peer, std::int64_t value,
            const char* name) {
  threadBuffer()->push(Event{kind, rank, peer, value, now(), name, tls_tenant});
}

void escapeJson(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool enabled() {
  // The env latch runs once; afterwards only the atomic is consulted, so
  // the disabled-path cost is a single relaxed load.
  (void)envEnabled();
  return g_enabled.load(std::memory_order_relaxed);
}

void setEnabled(bool on) {
  (void)envEnabled();  // keep latch-order deterministic
  g_enabled.store(on, std::memory_order_relaxed);
}

void setThreadRank(int rank) { tls_rank = rank; }
int threadRank() { return tls_rank; }

void setThreadTenant(const char* tenant) { tls_tenant = tenant; }
const char* threadTenant() { return tls_tenant; }

const char* lastPhase(int rank) {
  if (rank < 0 || rank >= kPhaseRanks) return "?";
  const char* p =
      phaseRegistry()[static_cast<std::size_t>(rank)].load(
          std::memory_order_relaxed);
  return p != nullptr ? p : "?";
}

const char* intern(std::string_view name) {
  auto& p = internPool();
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.strings.emplace(name).first->c_str();
}

void begin(const char* name) {
  notePhase(tls_rank, name);
  if (enabled()) record(Kind::kBegin, tls_rank, -1, 0, name);
}
void end(const char* name) {
  if (enabled()) record(Kind::kEnd, tls_rank, -1, 0, name);
}
void beginAs(int rank, const char* name) {
  notePhase(rank, name);
  if (enabled()) record(Kind::kBegin, rank, -1, 0, name);
}
void endAs(int rank, const char* name) {
  if (enabled()) record(Kind::kEnd, rank, -1, 0, name);
}
void instant(const char* name) {
  if (enabled()) record(Kind::kInstant, tls_rank, -1, 0, name);
}
void counter(const char* name, std::int64_t value) {
  if (enabled()) record(Kind::kCounter, tls_rank, -1, value, name);
}
void send(int peer, std::int64_t bytes, const char* channel) {
  if (enabled()) record(Kind::kSend, tls_rank, peer, bytes, channel);
}
void recv(int peer, std::int64_t bytes, const char* channel) {
  if (enabled()) record(Kind::kRecv, tls_rank, peer, bytes, channel);
}
void sendAs(int rank, int peer, std::int64_t bytes, const char* channel) {
  if (enabled()) record(Kind::kSend, rank, peer, bytes, channel);
}
void recvAs(int rank, int peer, std::int64_t bytes, const char* channel) {
  if (enabled()) record(Kind::kRecv, rank, peer, bytes, channel);
}

Merged snapshot() {
  Merged m;
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  m.threads.reserve(r.buffers.size());
  for (auto& b : r.buffers) {
    auto t = b->copy();
    if (!t.events.empty()) m.threads.push_back(std::move(t));
  }
  return m;
}

void clear() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& b : r.buffers) b->reset();
}

void writeChromeTrace(std::ostream& os, const Merged& merged) {
  // Timestamps are rebased so the trace starts near zero.
  double base = 0.0;
  bool have_base = false;
  for (const auto& t : merged.threads)
    for (const auto& e : t.events)
      if (!have_base || e.ts < base) {
        base = e.ts;
        have_base = true;
      }

  auto tidOf = [](const ThreadEvents& t, const Event& e) {
    return e.rank >= 0 ? e.rank : 1000 + t.tid;
  };

  std::string out;
  out += "{\"traceEvents\":[";
  bool first = true;
  char buf[160];

  // Thread-name metadata: one entry per distinct tid.
  std::vector<int> tids;
  for (const auto& t : merged.threads)
    for (const auto& e : t.events) tids.push_back(tidOf(t, e));
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (int tid : tids) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s %d\"}}",
                  first ? "" : ",", tid, tid >= 1000 ? "driver" : "rank",
                  tid >= 1000 ? tid - 1000 : tid);
    out += buf;
    first = false;
  }

  for (const auto& t : merged.threads) {
    for (const auto& e : t.events) {
      const double us = (e.ts - base) * 1e6;
      const int tid = tidOf(t, e);
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      escapeJson(out, e.name);
      out += '"';
      switch (e.kind) {
        case Kind::kBegin:
        case Kind::kEnd:
          std::snprintf(buf, sizeof buf,
                        ",\"cat\":\"phase\",\"ph\":\"%c\",\"ts\":%.3f,"
                        "\"pid\":0,\"tid\":%d",
                        e.kind == Kind::kBegin ? 'B' : 'E', us, tid);
          out += buf;
          if (e.tenant != nullptr) {
            out += ",\"args\":{\"tenant\":\"";
            escapeJson(out, e.tenant);
            out += "\"}";
          }
          buf[0] = '}';
          buf[1] = '\0';
          break;
        case Kind::kInstant:
          std::snprintf(buf, sizeof buf,
                        ",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\","
                        "\"ts\":%.3f,\"pid\":0,\"tid\":%d}",
                        us, tid);
          break;
        case Kind::kSend:
        case Kind::kRecv:
          std::snprintf(
              buf, sizeof buf,
              ",\"cat\":\"msg\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
              "\"pid\":0,\"tid\":%d,\"args\":{\"dir\":\"%s\",\"peer\":%d,"
              "\"bytes\":%lld}}",
              us, tid, e.kind == Kind::kSend ? "send" : "recv", e.peer,
              static_cast<long long>(e.value));
          break;
        case Kind::kCounter:
          std::snprintf(buf, sizeof buf,
                        ",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":%.3f,"
                        "\"pid\":0,\"tid\":%d,\"args\":{\"value\":%lld}}",
                        us, tid, static_cast<long long>(e.value));
          break;
      }
      out += buf;
      if (out.size() >= 1 << 20) {
        os << out;
        out.clear();
      }
    }
  }
  out += "]}";
  os << out;
}

std::string defaultTracePath() {
  const char* p = std::getenv("PUMI_TRACE_FILE");
  return p != nullptr && *p != '\0' ? p : "pumi_trace.json";
}

bool flushNow() {
  if (g_flushed.exchange(true, std::memory_order_relaxed)) return false;
  const Merged merged = snapshot();
  if (merged.totalEvents() == 0) return false;
  const std::string path = defaultTracePath();
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "pcu::trace: cannot write %s; trace lost\n",
                 path.c_str());
    return false;
  }
  writeChromeTrace(os, merged);
  os.flush();
  std::fprintf(stderr, "pcu::trace: wrote %zu events to %s\n",
               merged.totalEvents(), path.c_str());
  return os.good();
}

}  // namespace pcu::trace
