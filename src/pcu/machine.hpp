#ifndef PUMI_PCU_MACHINE_HPP
#define PUMI_PCU_MACHINE_HPP

/// \file machine.hpp
/// \brief Explicit machine model standing in for hwloc topology detection.
///
/// The paper's architecture-aware partitioning (Sec. II-D) maps each MPI
/// process to a node (largest shared-memory hardware entity) and each thread
/// to a processing unit. We model that hierarchy explicitly: a Machine is a
/// set of identical nodes, each with a fixed number of cores. Ranks (or mesh
/// parts) are laid out block-wise: rank r lives on node r / coresPerNode.

#include <cassert>
#include <string>

namespace pcu {

/// Two-level machine topology: nodes x cores-per-node.
class Machine {
 public:
  Machine() = default;
  Machine(int nodes, int cores_per_node)
      : nodes_(nodes), cores_per_node_(cores_per_node) {
    assert(nodes > 0 && cores_per_node > 0);
  }

  /// A machine with a single node holding all ranks (pure shared memory).
  static Machine singleNode(int cores) { return Machine(1, cores); }

  /// A machine with one core per node (pure distributed memory / flat MPI).
  static Machine flat(int nodes) { return Machine(nodes, 1); }

  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] int coresPerNode() const { return cores_per_node_; }
  [[nodiscard]] int totalCores() const { return nodes_ * cores_per_node_; }

  /// Node index hosting rank r.
  [[nodiscard]] int nodeOf(int rank) const {
    assert(rank >= 0 && rank < totalCores());
    return rank / cores_per_node_;
  }

  /// Core index (within its node) hosting rank r.
  [[nodiscard]] int coreOf(int rank) const {
    assert(rank >= 0 && rank < totalCores());
    return rank % cores_per_node_;
  }

  /// Rank at (node, core).
  [[nodiscard]] int rankAt(int node, int core) const {
    assert(node >= 0 && node < nodes_);
    assert(core >= 0 && core < cores_per_node_);
    return node * cores_per_node_ + core;
  }

  /// True when both ranks share a node's memory (on-node communication).
  [[nodiscard]] bool sameNode(int a, int b) const {
    return nodeOf(a) == nodeOf(b);
  }

  [[nodiscard]] std::string describe() const {
    return std::to_string(nodes_) + " node(s) x " +
           std::to_string(cores_per_node_) + " core(s)";
  }

  friend bool operator==(const Machine& a, const Machine& b) {
    return a.nodes_ == b.nodes_ && a.cores_per_node_ == b.cores_per_node_;
  }

 private:
  int nodes_ = 1;
  int cores_per_node_ = 1;
};

}  // namespace pcu

#endif  // PUMI_PCU_MACHINE_HPP
