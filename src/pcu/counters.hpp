#ifndef PUMI_PCU_COUNTERS_HPP
#define PUMI_PCU_COUNTERS_HPP

/// \file counters.hpp
/// \brief Run-time and memory usage measurement (paper Sec. II-D,
/// "Performance measurement: run-time and memory usage counter").

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace pcu {

/// Wall-clock seconds since an arbitrary epoch.
double now();

/// Resident set size of this process in bytes (0 if unavailable).
std::uint64_t currentMemoryBytes();

/// Peak resident set size of this process in bytes (0 if unavailable).
std::uint64_t peakMemoryBytes();

/// A named accumulator of wall-clock time and call counts.
class Timers {
 public:
  /// RAII scope: accumulates elapsed time into the named timer.
  class Scope {
   public:
    Scope(Timers& timers, std::string name)
        : timers_(timers), name_(std::move(name)), start_(now()) {}
    ~Scope() { timers_.add(name_, now() - start_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Timers& timers_;
    std::string name_;
    double start_;
  };

  void add(const std::string& name, double seconds) {
    auto& e = entries_[name];
    e.seconds += seconds;
    e.calls += 1;
  }
  [[nodiscard]] double seconds(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.seconds;
  }
  [[nodiscard]] std::uint64_t calls(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.calls;
  }
  void clear() { entries_.clear(); }

  struct Entry {
    double seconds = 0.0;
    std::uint64_t calls = 0;
  };
  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace pcu

#endif  // PUMI_PCU_COUNTERS_HPP
