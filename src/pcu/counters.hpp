#ifndef PUMI_PCU_COUNTERS_HPP
#define PUMI_PCU_COUNTERS_HPP

/// \file counters.hpp
/// \brief Run-time and memory usage measurement (paper Sec. II-D,
/// "Performance measurement: run-time and memory usage counter").

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace pcu {

/// Wall-clock seconds since an arbitrary epoch.
double now();

/// Resident set size of this process in bytes (0 if unavailable).
std::uint64_t currentMemoryBytes();

/// Peak resident set size of this process in bytes (0 if unavailable).
std::uint64_t peakMemoryBytes();

/// A named accumulator of wall-clock time and call counts.
class Timers {
 public:
  /// RAII scope: accumulates elapsed time into the named timer. Holds a
  /// view of the name (no allocation on the hot path); the referenced
  /// characters must outlive the scope, which every caller passing a
  /// string literal satisfies.
  class Scope {
   public:
    Scope(Timers& timers, std::string_view name)
        : timers_(timers), name_(name), start_(now()) {}
    ~Scope() { timers_.add(name_, now() - start_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Timers& timers_;
    std::string_view name_;
    double start_;
  };

  void add(std::string_view name, double seconds) {
    auto it = entries_.find(name);
    if (it == entries_.end())
      it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.seconds += seconds;
    it->second.calls += 1;
  }
  [[nodiscard]] double seconds(std::string_view name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.seconds;
  }
  [[nodiscard]] std::uint64_t calls(std::string_view name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.calls;
  }
  void clear() { entries_.clear(); }

  struct Entry {
    double seconds = 0.0;
    std::uint64_t calls = 0;
  };
  /// Transparent comparator: lookups by string_view allocate nothing.
  using EntryMap = std::map<std::string, Entry, std::less<>>;
  [[nodiscard]] const EntryMap& entries() const { return entries_; }

 private:
  EntryMap entries_;
};

}  // namespace pcu

#endif  // PUMI_PCU_COUNTERS_HPP
