#ifndef PUMI_PCU_FAILURE_HPP
#define PUMI_PCU_FAILURE_HPP

/// \file failure.hpp
/// \brief Heartbeat-based rank-failure detection and ULFM-style revocation.
///
/// The recovery stack so far (framing, ARQ, transactions, checkpoints)
/// survives *message-level* faults; a dead or hung rank still deadlocked
/// every collective. This layer closes that gap for the thread-backed MPI
/// model: every Group owns a Detector in which each rank stamps a shared
/// per-rank epoch counter (a heartbeat) whenever it passes a communication
/// point or wakes from a bounded wait slice. A peer that stays silent past
/// the configured deadline is declared dead, which *revokes* the group —
/// every rank blocked in a receive observes the revocation within one wait
/// slice and throws a structured pcu::Error(kRankFailed) naming the dead
/// rank, instead of hanging forever. Survivors then call Comm::shrink() to
/// agree on the surviving-rank set and continue on a densely renumbered
/// smaller group (ULFM's MPI_Comm_revoke + MPI_Comm_shrink, scaled down to
/// this library's thread-rank model).
///
/// The detector is armed only while a fault plan schedules a kill/hang (or
/// sets an explicit deadline): with no plan the hot paths pay one relaxed
/// atomic load, and the historical blocking-receive behaviour is untouched.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pcu/error.hpp"

namespace pcu::failure {

/// Thrown inside a rank condemned by a kill:/hang: fault plan — the
/// thread-backed stand-in for the whole process dying. Harnesses catch it
/// at the rank function's top level: the "process" simply disappears and
/// its peers must detect the silence.
class RankKilled : public Error {
 public:
  RankKilled(int rank, std::string detail)
      : Error(ErrorCode::kRankFailed, rank, std::move(detail)) {}
};

/// Process-global failure-detection counters (relaxed atomics, same
/// contract as arq::Stats): what the detector actually did.
struct Stats {
  std::uint64_t heartbeats = 0;     ///< epoch stamps recorded
  std::uint64_t suspicions = 0;     ///< ranks declared dead by silence
  std::uint64_t shrinks = 0;        ///< surviving-group rebuilds
  std::uint64_t grows = 0;          ///< elastic group expansions
  std::uint64_t ranks_joined = 0;   ///< newcomer ranks admitted by grows
  std::int64_t last_detect_us = 0;  ///< latest silence span at detection
  std::int64_t max_detect_us = 0;   ///< worst silence span at detection
};

Stats stats();
void resetStats();

void noteHeartbeat();
/// Record one rank death; `latency_us` is how long the rank had been
/// silent when it was declared dead (the detection latency). Also emits
/// the fd:* trace counters so the per-phase report and the Chrome trace
/// carry the detector's activity.
void noteSuspicion(std::int64_t latency_us);
void noteShrink();
/// Record one elastic group expansion that admitted `ranks` newcomers
/// (Comm::grow / dist elastic join); emits fd:grow_events and
/// fd:ranks_joined trace counters.
void noteGrow(int ranks);

/// Microseconds on the detector's monotonic clock.
std::int64_t nowUs();

/// Per-Group heartbeat failure detector. All methods are thread-safe;
/// beat()/armed()/revoked() are wait-free (relaxed atomics) so they can sit
/// on receive hot paths.
class Detector {
 public:
  explicit Detector(int ranks);
  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// Arm the detector with a heartbeat deadline (first arm wins; later
  /// calls are no-ops). Stamps every rank's heartbeat to "now" first, so
  /// nobody is retroactively silent.
  void arm(int deadline_ms);
  [[nodiscard]] bool armed() const {
    return deadline_ms_.load(std::memory_order_acquire) > 0;
  }
  [[nodiscard]] int deadlineMs() const {
    return deadline_ms_.load(std::memory_order_acquire);
  }

  /// Stamp `rank`'s heartbeat.
  void beat(int rank);
  /// Declare `rank` dead and revoke the group (idempotent; only the first
  /// declaration records a suspicion).
  void markDead(int rank);
  [[nodiscard]] bool dead(int rank) const;
  /// True once any rank was declared dead: communication on the group must
  /// stop and surface kRankFailed (ULFM revocation semantics).
  [[nodiscard]] bool revoked() const {
    return revoked_.load(std::memory_order_acquire);
  }
  /// Lowest-numbered dead rank (-1 when none): the rank error reports name.
  [[nodiscard]] int firstDead() const;
  [[nodiscard]] std::vector<int> deadRanks() const;
  [[nodiscard]] std::vector<int> survivors() const;

  /// Declare `rank` dead iff it has been silent past the deadline; returns
  /// the rank when declared, -1 otherwise.
  int suspectRank(int rank);
  /// suspectRank over every rank; returns the first one declared, -1 when
  /// all ranks beat recently enough.
  int suspectAny();

 private:
  int n_;
  std::atomic<int> deadline_ms_{0};
  std::atomic<bool> revoked_{false};
  std::mutex arm_mutex_;
  std::unique_ptr<std::atomic<std::int64_t>[]> last_beat_us_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
};

}  // namespace pcu::failure

#endif  // PUMI_PCU_FAILURE_HPP
