#ifndef PUMI_PCU_PHASED_HPP
#define PUMI_PCU_PHASED_HPP

/// \file phased.hpp
/// \brief Phased (bulk-synchronous) neighbour exchange, PCU's signature op.
///
/// In one phase every rank posts zero or more messages to arbitrary
/// destinations, then receives exactly the messages addressed to it. The
/// number of inbound messages is agreed on collectively (an allreduce over
/// per-destination counts), which is how the real PCU terminates its
/// non-blocking exchange. All PUMI distributed-mesh operations are built
/// from a sequence of such phases.

#include <optional>
#include <utility>
#include <vector>

#include "pcu/buffer.hpp"
#include "pcu/comm.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/trace.hpp"

namespace pcu {

/// Tag used by phased exchanges; phases are separated by the collective
/// count agreement, so one tag suffices.
inline constexpr int kPhasedTag = 1000;

/// Post `outgoing` (destination, payload) pairs and receive every message
/// addressed to this rank in the same phase. Every rank of the comm must
/// call this (possibly with an empty list). Received messages carry their
/// source rank and arrive in arbitrary source order.
///
/// While a fault plan is active the exchange is hardened: payloads are
/// framed and verified, injected stalls are applied, and any rank's
/// structured error (corruption, duplication, watchdog timeout) is agreed
/// on collectively so every rank throws together — a faulty phase aborts
/// cleanly instead of hanging or silently corrupting the caller.
inline std::vector<Message> phasedExchange(
    Comm& comm, std::vector<std::pair<int, OutBuffer>> outgoing) {
  trace::Scope scope("pcu:phasedExchange", comm.rank());
  const int n = comm.size();
  std::vector<long> inbound_counts(n, 0);
  for (const auto& [dest, buf] : outgoing) {
    (void)buf;
    inbound_counts[dest] += 1;
  }
  inbound_counts = comm.allreduce(std::move(inbound_counts),
                                  [](long a, long b) { return a + b; });
  const long expected = inbound_counts[comm.rank()];
  std::vector<Message> received;
  received.reserve(expected);
  if (!faults::framingEnabled()) {
    for (auto& [dest, buf] : outgoing)
      comm.send(dest, kPhasedTag, std::move(buf).take());
    for (long i = 0; i < expected; ++i)
      received.push_back(comm.recv(kAnySource, kPhasedTag));
    return received;
  }
  faults::maybeStall(comm.rank());
  std::optional<Error> local;
  try {
    for (auto& [dest, buf] : outgoing)
      comm.send(dest, kPhasedTag, std::move(buf).take());
    comm.flushDelayed();
    for (long i = 0; i < expected; ++i)
      received.push_back(comm.recv(kAnySource, kPhasedTag));
  } catch (const Error& e) {
    local = e;
  }
  faults::agreeOnError(comm, local ? &*local : nullptr);
  return received;
}

}  // namespace pcu

#endif  // PUMI_PCU_PHASED_HPP
