#ifndef PUMI_PCU_PHASED_HPP
#define PUMI_PCU_PHASED_HPP

/// \file phased.hpp
/// \brief Phased (bulk-synchronous) neighbour exchange, PCU's signature op.
///
/// In one phase every rank posts zero or more messages to arbitrary
/// destinations, then receives exactly the messages addressed to it. All
/// PUMI distributed-mesh operations are built from a sequence of such
/// phases.
///
/// Two scalability properties of the paper's PCU are reproduced here:
///  - all payloads bound for the same peer are coalesced into one physical
///    message per (rank, peer) pair and split back into logical messages on
///    receipt, so per-message overhead (mailbox lock, allocation, frame,
///    trace record) is paid per *neighbour*, not per payload;
///  - the number of inbound messages is agreed on with a sparse
///    reduce-scatter over (destination, count) contributions, so per-phase
///    collective traffic is proportional to the number of actual neighbour
///    pairs (times log P), not to a size-P vector per rank.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pcu/buffer.hpp"
#include "pcu/comm.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/trace.hpp"

namespace pcu {

/// Tag used by phased exchanges; phases are separated by the collective
/// count agreement, so one tag suffices.
inline constexpr int kPhasedTag = 1000;

/// Options for one phased exchange. Collective: every rank of the comm must
/// pass the same values.
struct PhasedOptions {
  /// Pack all payloads for the same destination into one physical message
  /// (length-prefixed sub-messages). Receivers always get individual
  /// Messages back, so callers are unaffected either way; `false` keeps the
  /// one-mailbox-push-per-payload behaviour for A/B comparison.
  bool coalesce = true;
};

namespace detail {

/// Payloads for one destination, accumulated in posting order.
struct PhasedSegment {
  int dest = 0;
  OutBuffer bytes;               ///< concatenated [u32 length][payload] records
  std::uint64_t count = 0;       ///< logical sub-messages packed
  std::uint64_t logical_bytes = 0;  ///< payload bytes, excluding prefixes
};

/// Split one coalesced segment back into logical Messages, tracing each
/// sub-message so the trace report stays in logical units.
inline void unpackSegment(int self, Message physical,
                          std::vector<Message>& out) {
  InBuffer body = std::move(physical.body);
  while (!body.done()) {
    const auto len = body.unpack<std::uint32_t>();
    Message m;
    m.source = physical.source;
    m.tag = physical.tag;
    m.body = InBuffer(body.unpackRaw(len));
    if (trace::enabled())
      trace::recvAs(self, m.source, static_cast<std::int64_t>(m.body.size()),
                    "pcu");
    out.push_back(std::move(m));
  }
}

}  // namespace detail

/// Post `outgoing` (destination, payload) pairs and receive every message
/// addressed to this rank in the same phase. Every rank of the comm must
/// call this (possibly with an empty list). Received messages carry their
/// source rank and arrive in arbitrary source order.
///
/// While a fault plan is active the exchange is hardened: physical messages
/// are framed and verified (one seq/CRC per coalesced segment), injected
/// stalls are applied, and any rank's structured error (corruption,
/// duplication, watchdog timeout) is agreed on collectively so every rank
/// throws together — a faulty phase aborts cleanly instead of hanging or
/// silently corrupting the caller.
inline std::vector<Message> phasedExchange(
    Comm& comm, std::vector<std::pair<int, OutBuffer>> outgoing,
    PhasedOptions options = {}) {
  trace::Scope scope("pcu:phasedExchange", comm.rank());
  // Hardened phase boundary: heartbeat, and consume any kill=/hang= rank
  // fault scheduled for this rank at this boundary — before the count
  // agreement below, so a condemned rank never contributes to it and its
  // peers detect the silence instead of computing with a ghost.
  if (comm.framingEnabled()) comm.rankFaultPoint();
  // One pass over the payloads builds both the per-destination coalesced
  // segments and the sparse (destination, physical count) contributions the
  // termination agreement needs.
  std::vector<detail::PhasedSegment> segments;
  std::unordered_map<int, std::size_t> segment_of;
  for (auto& [dest, buf] : outgoing) {
    auto [it, fresh] = segment_of.try_emplace(dest, segments.size());
    if (fresh) {
      segments.emplace_back();
      segments.back().dest = dest;
    }
    auto& seg = segments[it->second];
    seg.count += 1;
    seg.logical_bytes += buf.size();
    if (options.coalesce) {
      // Logical trace attribution happens per payload at pack time; the
      // physical segment sent below carries no trace record of its own, so
      // the pairwise byte-conservation invariant holds in logical units.
      if (trace::enabled())
        trace::sendAs(comm.rank(), dest,
                      static_cast<std::int64_t>(buf.size()), "pcu");
      seg.bytes.pack<std::uint32_t>(static_cast<std::uint32_t>(buf.size()));
      seg.bytes.packBytes(buf.data(), buf.size());
      buf.clear();
    }
  }
  // Agree on how many *physical* messages each rank will receive. Sparse:
  // traffic scales with neighbour pairs, not with comm size.
  std::vector<std::pair<int, long>> contributions;
  contributions.reserve(segments.size());
  for (const auto& seg : segments)
    contributions.emplace_back(
        seg.dest, options.coalesce ? 1L : static_cast<long>(seg.count));
  const long expected = comm.reduceScatterSum(contributions);
  comm.reserveInbound(static_cast<std::size_t>(expected));

  std::vector<Message> received;
  received.reserve(static_cast<std::size_t>(expected));
  auto post = [&]() {
    if (!options.coalesce) {
      for (auto& [dest, buf] : outgoing)
        comm.send(dest, kPhasedTag, std::move(buf).take());
      return;
    }
    for (auto& seg : segments)
      comm.sendCoalesced(seg.dest, kPhasedTag, std::move(seg.bytes).take(),
                         seg.count, seg.logical_bytes);
  };
  auto collect = [&]() {
    for (long i = 0; i < expected; ++i) {
      if (options.coalesce) {
        detail::unpackSegment(comm.rank(),
                              comm.recvUntraced(kAnySource, kPhasedTag),
                              received);
      } else {
        received.push_back(comm.recv(kAnySource, kPhasedTag));
      }
    }
  };
  if (!comm.framingEnabled()) {
    post();
    collect();
    return received;
  }
  comm.faultDomain().maybeStall(comm.rank());
  std::optional<Error> local;
  try {
    post();
    comm.flushDelayed();
    collect();
  } catch (const Error& e) {
    // A rank failure revokes the communicator: the collective agreement
    // below could never complete (it would block on the dead rank), and the
    // revocation itself already is the agreement — every survivor throws.
    if (e.code() == ErrorCode::kRankFailed) throw;
    local = e;
  }
  faults::agreeOnError(comm, local ? &*local : nullptr);
  return received;
}

}  // namespace pcu

#endif  // PUMI_PCU_PHASED_HPP
