#ifndef PUMI_PCU_PHASED_HPP
#define PUMI_PCU_PHASED_HPP

/// \file phased.hpp
/// \brief Phased (bulk-synchronous) neighbour exchange, PCU's signature op.
///
/// In one phase every rank posts zero or more messages to arbitrary
/// destinations, then receives exactly the messages addressed to it. The
/// number of inbound messages is agreed on collectively (an allreduce over
/// per-destination counts), which is how the real PCU terminates its
/// non-blocking exchange. All PUMI distributed-mesh operations are built
/// from a sequence of such phases.

#include <utility>
#include <vector>

#include "pcu/buffer.hpp"
#include "pcu/comm.hpp"
#include "pcu/trace.hpp"

namespace pcu {

/// Tag used by phased exchanges; phases are separated by the collective
/// count agreement, so one tag suffices.
inline constexpr int kPhasedTag = 1000;

/// Post `outgoing` (destination, payload) pairs and receive every message
/// addressed to this rank in the same phase. Every rank of the comm must
/// call this (possibly with an empty list). Received messages carry their
/// source rank and arrive in arbitrary source order.
inline std::vector<Message> phasedExchange(
    Comm& comm, std::vector<std::pair<int, OutBuffer>> outgoing) {
  trace::Scope scope("pcu:phasedExchange", comm.rank());
  const int n = comm.size();
  std::vector<long> inbound_counts(n, 0);
  for (const auto& [dest, buf] : outgoing) {
    (void)buf;
    inbound_counts[dest] += 1;
  }
  inbound_counts = comm.allreduce(std::move(inbound_counts),
                                  [](long a, long b) { return a + b; });
  const long expected = inbound_counts[comm.rank()];
  for (auto& [dest, buf] : outgoing)
    comm.send(dest, kPhasedTag, std::move(buf).take());
  std::vector<Message> received;
  received.reserve(expected);
  for (long i = 0; i < expected; ++i)
    received.push_back(comm.recv(kAnySource, kPhasedTag));
  return received;
}

}  // namespace pcu

#endif  // PUMI_PCU_PHASED_HPP
