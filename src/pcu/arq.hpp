#ifndef PUMI_PCU_ARQ_HPP
#define PUMI_PCU_ARQ_HPP

/// \file arq.hpp
/// \brief Reliable-delivery (ARQ) configuration and accounting.
///
/// Tier 1 of the recovery stack: when reliability is on (PUMI_RELIABLE in
/// the environment, or pcu::Comm::setReliable / arq::setReliable), the
/// framed messaging paths stop treating injected faults as fatal and
/// recover instead:
///
///  - every framed send keeps a clean copy of the frame in a per-group
///    retransmit store until the receiver acknowledges delivery (in-order
///    receipt prunes the channel's stored prefix);
///  - a dropped frame leaves a loss beacon behind, so the receiver pulls
///    the retransmission immediately instead of waiting out a timeout;
///  - receivers also scan the store on a capped exponential-backoff timer
///    (the RTO path), which covers delayed and reordered traffic;
///  - corrupt frames are discarded and re-fetched; duplicate sequence
///    numbers are silently dropped instead of raising kDuplicateMessage;
///  - each retransmission attempt re-runs the fault plan's deterministic
///    decision under an attempt salt, so a transient plan eventually lets
///    a retransmission through while a permanent (p = 1) plan exhausts the
///    bounded retry budget and converts to a structured
///    pcu::Error(kMessageLost) naming the channel and sequence number.
///
/// dist::Network recovers the same way at its bulk-synchronous phase
/// boundary (see network.hpp). Reliability implies framing: enabling it
/// turns pcu::faults::framingEnabled() on even without a fault plan.
///
/// PUMI_RELIABLE syntax: "1"/"on"/"true" (defaults), "0"/"off"/"false",
/// or comma-separated key=value:
///   budget=16        retransmission attempts per missing frame
///   rto_us=200       first receiver store-scan interval, microseconds
///   maxrto_us=20000  backoff cap, microseconds
///   opretries=3      tier-2 transactional operation replays (dist ops)
/// Malformed specs are rejected with pcu::Error(kValidation) naming the
/// bad token (same strict parser as PUMI_FAULTS).

#include <cstdint>
#include <string>

namespace pcu::arq {

/// Reliable-delivery knobs. `on` gates everything; the rest tune it.
struct Config {
  bool on = false;
  int retry_budget = 16;   ///< retransmission attempts per missing frame
  int rto_us = 200;        ///< first receiver store-scan interval
  int max_rto_us = 20000;  ///< exponential-backoff cap
  int op_retries = 3;      ///< default tier-2 transactional replays
};

/// Parse a PUMI_RELIABLE-style spec. Throws pcu::Error(kValidation) naming
/// the bad token on malformed input.
Config parseConfig(const std::string& spec);

/// Install a full config (latches PUMI_RELIABLE from the environment
/// first, so a programmatic setting always wins). Only call at quiescent
/// points, like faults::setPlan.
void setConfig(const Config& config);

/// Switch reliability on (default knobs) or off, preserving tuned knobs.
void setReliable(bool on);

/// True when reliable delivery is active for the calling thread: the
/// ambient fault domain's reliable override when one is set (see
/// pcu::faults::Domain::setReliable — a tenant-scoped switch), else the
/// process-global setting. First call latches PUMI_RELIABLE.
bool enabled();

/// The raw process-global reliable switch, ignoring any ambient fault
/// domain override. Used by faults::Domain as the inherit fallback.
bool processEnabled();

/// The active config (meaningful knobs even while off).
Config config();

/// Deterministic salt for retransmission-attempt fault decisions: attempt 0
/// returns `seq` unchanged (the original transmission's decision stream is
/// exactly what a non-reliable run sees); attempts >= 1 decorrelate so a
/// transient fault plan does not deterministically re-fault every
/// retransmission of the same frame.
inline std::uint64_t saltSeq(std::uint64_t seq, std::uint64_t attempt) {
  if (attempt == 0) return seq;
  return seq ^ (0x9e3779b97f4a7c15ull * attempt) ^ (attempt << 48);
}

/// --- accounting ---------------------------------------------------------
/// Process-global counters (relaxed atomics): what reliability actually did.

struct Stats {
  std::uint64_t frames_stored = 0;      ///< clean frames kept for resend
  std::uint64_t beacons_sent = 0;       ///< loss beacons left by drops
  std::uint64_t retransmits = 0;        ///< retransmission attempts made
  std::uint64_t recovered = 0;          ///< frames recovered via the store
  std::uint64_t duplicates_dropped = 0; ///< dedup discards (vs kDuplicate)
  std::uint64_t corrupt_dropped = 0;    ///< corrupt frames discarded
  std::uint64_t acked = 0;              ///< store prunes on in-order receipt
};

Stats stats();
void resetStats();

void noteStored();
void noteBeacon();
void noteRetransmit();
void noteRecovered();
void noteDuplicateDropped();
void noteCorruptDropped();
void noteAcked();

}  // namespace pcu::arq

#endif  // PUMI_PCU_ARQ_HPP
