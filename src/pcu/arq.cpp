#include "pcu/arq.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "pcu/envspec.hpp"
#include "pcu/faults.hpp"

namespace pcu::arq {

namespace {

struct State {
  std::mutex mutex;
  Config config;
};

State& state() {
  static State s;
  return s;
}

/// Hot-path gate: one relaxed load, like faults::framingEnabled().
std::atomic<bool> g_on{false};

std::atomic<std::uint64_t> g_frames_stored{0};
std::atomic<std::uint64_t> g_beacons_sent{0};
std::atomic<std::uint64_t> g_retransmits{0};
std::atomic<std::uint64_t> g_recovered{0};
std::atomic<std::uint64_t> g_duplicates_dropped{0};
std::atomic<std::uint64_t> g_corrupt_dropped{0};
std::atomic<std::uint64_t> g_acked{0};

void installLocked(State& s, const Config& c) {
  s.config = c;
  g_on.store(c.on, std::memory_order_relaxed);
}

/// Latch PUMI_RELIABLE once, before the first enabled()/config() query;
/// setConfig()/setReliable() override it.
void envLatch() {
  static const bool latched = [] {
    const char* spec = std::getenv("PUMI_RELIABLE");
    if (spec != nullptr && *spec != '\0') {
      auto& s = state();
      std::lock_guard<std::mutex> lock(s.mutex);
      installLocked(s, parseConfig(spec));
    }
    return true;
  }();
  (void)latched;
}

}  // namespace

Config parseConfig(const std::string& spec) {
  const std::string env = "PUMI_RELIABLE";
  Config c;
  // Single-token on/off form.
  if (spec.find('=') == std::string::npos && spec.find(',') == std::string::npos) {
    c.on = envspec::parseBool(env, "PUMI_RELIABLE", spec);
    return c;
  }
  // key=value list form implies on unless on=0 appears.
  c.on = true;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      envspec::fail(env, "missing '=' in \"" + item + "\"");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "on") {
      c.on = envspec::parseBool(env, key, val);
    } else if (key == "budget") {
      c.retry_budget = envspec::parseInt(env, key, val, 1, 1000000);
    } else if (key == "rto_us") {
      c.rto_us = envspec::parseInt(env, key, val, 1, 1000000000);
    } else if (key == "maxrto_us") {
      c.max_rto_us = envspec::parseInt(env, key, val, 1, 1000000000);
    } else if (key == "opretries") {
      c.op_retries = envspec::parseInt(env, key, val, 0, 1000);
    } else {
      envspec::fail(env, "unknown key \"" + key + "\"");
    }
  }
  if (c.max_rto_us < c.rto_us)
    envspec::fail(env, "maxrto_us " + std::to_string(c.max_rto_us) +
                           " below rto_us " + std::to_string(c.rto_us));
  return c;
}

void setConfig(const Config& config) {
  envLatch();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  installLocked(s, config);
}

void setReliable(bool on) {
  envLatch();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  Config c = s.config;
  c.on = on;
  installLocked(s, c);
}

bool enabled() {
  envLatch();
  const int ov = faults::ambientReliableOverride();
  if (ov >= 0) return ov != 0;
  return g_on.load(std::memory_order_relaxed);
}

bool processEnabled() {
  envLatch();
  return g_on.load(std::memory_order_relaxed);
}

Config config() {
  envLatch();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.config;
}

Stats stats() {
  Stats out;
  out.frames_stored = g_frames_stored.load(std::memory_order_relaxed);
  out.beacons_sent = g_beacons_sent.load(std::memory_order_relaxed);
  out.retransmits = g_retransmits.load(std::memory_order_relaxed);
  out.recovered = g_recovered.load(std::memory_order_relaxed);
  out.duplicates_dropped = g_duplicates_dropped.load(std::memory_order_relaxed);
  out.corrupt_dropped = g_corrupt_dropped.load(std::memory_order_relaxed);
  out.acked = g_acked.load(std::memory_order_relaxed);
  return out;
}

void resetStats() {
  g_frames_stored.store(0, std::memory_order_relaxed);
  g_beacons_sent.store(0, std::memory_order_relaxed);
  g_retransmits.store(0, std::memory_order_relaxed);
  g_recovered.store(0, std::memory_order_relaxed);
  g_duplicates_dropped.store(0, std::memory_order_relaxed);
  g_corrupt_dropped.store(0, std::memory_order_relaxed);
  g_acked.store(0, std::memory_order_relaxed);
}

void noteStored() { g_frames_stored.fetch_add(1, std::memory_order_relaxed); }
void noteBeacon() { g_beacons_sent.fetch_add(1, std::memory_order_relaxed); }
void noteRetransmit() { g_retransmits.fetch_add(1, std::memory_order_relaxed); }
void noteRecovered() { g_recovered.fetch_add(1, std::memory_order_relaxed); }
void noteDuplicateDropped() {
  g_duplicates_dropped.fetch_add(1, std::memory_order_relaxed);
}
void noteCorruptDropped() {
  g_corrupt_dropped.fetch_add(1, std::memory_order_relaxed);
}
void noteAcked() { g_acked.fetch_add(1, std::memory_order_relaxed); }

}  // namespace pcu::arq
