#ifndef PUMI_PCU_ERROR_HPP
#define PUMI_PCU_ERROR_HPP

/// \file error.hpp
/// \brief Structured errors for the messaging and distributed-mesh layers.
///
/// A pcu::Error names what went wrong (code), where (rank/part), on which
/// channel (peer, tag) and why (detail), so a failure in a distributed
/// operation is diagnosable instead of undefined behaviour or a hang. The
/// fault-hardening layers (pcu framing, dist transactional operations)
/// throw these; agreeOnError() (faults.hpp) propagates any rank's error to
/// every rank of a communicator so they fail together.

#include <stdexcept>
#include <string>

namespace pcu {

/// What kind of failure an Error reports.
enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kCorruptPayload,    ///< frame CRC/magic mismatch at receive
  kDuplicateMessage,  ///< channel sequence number already delivered
  kMessageLost,       ///< channel sequence gap at a phase boundary
  kTimeout,           ///< watchdog fired on a blocking receive
  kValidation,        ///< operation input rejected before any mutation
  kRemoteAbort,       ///< another rank reported an error; aborting together
  kProtocol,          ///< internal protocol invariant violated
  kRankFailed,        ///< a rank died or went silent; communicator revoked
  kAdmission,         ///< service admission control rejected or shed a job
  kIoFault,           ///< storage I/O failed (write error, out of space)
  kIntegrity,         ///< in-memory state corruption detected, not repairable
};

inline const char* errorCodeName(ErrorCode c) {
  switch (c) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kCorruptPayload: return "corrupt-payload";
    case ErrorCode::kDuplicateMessage: return "duplicate-message";
    case ErrorCode::kMessageLost: return "message-lost";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kValidation: return "validation";
    case ErrorCode::kRemoteAbort: return "remote-abort";
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kRankFailed: return "rank-failed";
    case ErrorCode::kAdmission: return "admission";
    case ErrorCode::kIoFault: return "io-fault";
    case ErrorCode::kIntegrity: return "integrity";
  }
  return "unknown";
}

/// A structured messaging/distributed-operation error. `rank` is the rank
/// (or part id) reporting the error; `peer`/`tag` identify the channel when
/// the failure is tied to one (-1/kNoTag otherwise).
class Error : public std::runtime_error {
 public:
  static constexpr int kNoTag = -0x7fffffff;

  Error(ErrorCode code, int rank, int peer, int tag, std::string detail)
      : std::runtime_error(format(code, rank, peer, tag, detail)),
        code_(code),
        rank_(rank),
        peer_(peer),
        tag_(tag),
        detail_(std::move(detail)) {}

  Error(ErrorCode code, int rank, std::string detail)
      : Error(code, rank, -1, kNoTag, std::move(detail)) {}

  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int peer() const { return peer_; }
  [[nodiscard]] int tag() const { return tag_; }
  [[nodiscard]] const std::string& detail() const { return detail_; }

 private:
  static std::string format(ErrorCode code, int rank, int peer, int tag,
                            const std::string& detail) {
    std::string s = "pcu::Error[";
    s += errorCodeName(code);
    s += "] rank ";
    s += std::to_string(rank);
    if (peer >= 0) {
      s += ", peer ";
      s += std::to_string(peer);
    }
    if (tag != kNoTag) {
      s += ", tag ";
      s += std::to_string(tag);
    }
    if (!detail.empty()) {
      s += ": ";
      s += detail;
    }
    return s;
  }

  ErrorCode code_;
  int rank_;
  int peer_;
  int tag_;
  std::string detail_;
};

}  // namespace pcu

#endif  // PUMI_PCU_ERROR_HPP
