#include "pcu/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>

#include "pcu/arq.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/trace.hpp"

namespace pcu {
namespace detail {

void Mailbox::push(int source, int tag, std::vector<std::byte> bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inbox_.push_back(Raw{source, tag, std::move(bytes)});
  }
  cv_.notify_one();
}

void Mailbox::pushMany(std::vector<Raw> batch) {
  if (batch.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inbox_.empty()) {
      inbox_ = std::move(batch);
    } else {
      inbox_.reserve(inbox_.size() + batch.size());
      for (auto& m : batch) inbox_.push_back(std::move(m));
    }
  }
  cv_.notify_one();
}

void Mailbox::reserveInbound(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  inbox_.reserve(inbox_.size() + n);
}

bool Mailbox::takeLocal(int source, int tag, Raw& out) {
  auto it = std::find_if(local_.begin(), local_.end(),
                         [&](const Raw& s) { return matches(s, source, tag); });
  if (it == local_.end()) return false;
  out = std::move(*it);
  local_.erase(it);
  return true;
}

bool Mailbox::pop(int source, int tag, long timeout_us, Raw& out) {
  // Fast path: the consumer-private queue already holds a match — no lock.
  if (takeLocal(source, tag, out)) return true;
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  for (;;) {
    if (!inbox_.empty()) {
      // Drain the whole inbox in one swap; scan it outside the lock.
      for (auto& m : inbox_) local_.push_back(std::move(m));
      inbox_.clear();
      lock.unlock();
      if (takeLocal(source, tag, out)) return true;
      lock.lock();
      continue;  // inbox may have refilled while unlocked
    }
    if (timeout_us <= 0) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return false;
    }
  }
}

bool Mailbox::probe(int source, int tag) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& m : inbox_) local_.push_back(std::move(m));
    inbox_.clear();
  }
  return std::any_of(local_.begin(), local_.end(),
                     [&](const Raw& s) { return matches(s, source, tag); });
}

void RetransmitStore::store(int src, int dst, int tag, std::uint64_t seq,
                            const std::vector<std::byte>& framed) {
  auto& shard = shards_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.chans[(static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
               << 32) |
              static_cast<std::uint32_t>(tag)][seq] = framed;
}

void RetransmitStore::ack(int src, int dst, int tag, std::uint64_t upto) {
  auto& shard = shards_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(tag);
  auto it = shard.chans.find(key);
  if (it == shard.chans.end()) return;
  it->second.erase(it->second.begin(), it->second.lower_bound(upto));
  if (it->second.empty()) shard.chans.erase(it);
}

std::optional<std::vector<std::byte>> RetransmitStore::fetch(
    int dst, int src, int tag, std::uint64_t seq) {
  auto& shard = shards_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(tag);
  auto it = shard.chans.find(key);
  if (it == shard.chans.end()) return std::nullopt;
  auto fit = it->second.find(seq);
  if (fit == it->second.end()) return std::nullopt;
  return fit->second;
}

std::vector<RetransmitStore::PendingFrame> RetransmitStore::pending(
    int dst, int src, int tag,
    const std::function<std::uint64_t(int)>& expected) {
  auto& shard = shards_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<PendingFrame> out;
  for (const auto& [key, frames] : shard.chans) {
    const int chan_src = static_cast<int>(key >> 32);
    const int chan_tag = static_cast<int>(static_cast<std::int32_t>(
        static_cast<std::uint32_t>(key & 0xffffffffu)));
    if (chan_tag != tag) continue;
    if (src != kAnySource && chan_src != src) continue;
    const std::uint64_t from_seq = expected(chan_src);
    for (auto it = frames.lower_bound(from_seq); it != frames.end(); ++it)
      out.push_back(PendingFrame{chan_src, it->first, it->second});
  }
  std::sort(out.begin(), out.end(),
            [](const PendingFrame& a, const PendingFrame& b) {
              return std::tie(a.src, a.seq) < std::tie(b.src, b.seq);
            });
  return out;
}

}  // namespace detail

Group::Group(int size, Machine machine, std::shared_ptr<faults::Domain> domain)
    : size_(size),
      machine_(machine),
      domain_(domain ? std::move(domain) : faults::defaultDomain()),
      boxes_(size) {
  assert(size > 0);
  // Default machine: all ranks on one node (pure shared memory).
  if (machine_.totalCores() < size_) machine_ = Machine::singleNode(size_);
}

Comm::Comm(std::shared_ptr<Group> group, int rank)
    : group_(std::move(group)), rank_(rank) {
  assert(rank_ >= 0 && rank_ < group_->size());
}

void Comm::send(int dest, int tag, const OutBuffer& buf) {
  assert(tag >= 0 && "negative tags are reserved for collectives");
  send(dest, tag, std::vector<std::byte>(buf.storage()));
}

void Comm::send(int dest, int tag, std::vector<std::byte> bytes) {
  assert(tag >= 0 && "negative tags are reserved for collectives");
  if (group_->domain_->framingEnabled()) {
    sendFramed(dest, tag, std::move(bytes));
    return;
  }
  sendInternal(dest, tag, std::move(bytes));
}

void Comm::accountSend(int dest, std::size_t payload_bytes) {
  stats_.messages_sent += 1;
  stats_.bytes_sent += payload_bytes;
  stats_.physical_messages += 1;
  stats_.physical_bytes += payload_bytes;
  if (sameNode(dest)) {
    stats_.on_node_messages += 1;
    stats_.on_node_bytes += payload_bytes;
  } else {
    stats_.off_node_messages += 1;
    stats_.off_node_bytes += payload_bytes;
  }
  if (trace::enabled())
    trace::sendAs(rank_, dest, static_cast<std::int64_t>(payload_bytes),
                  "pcu");
}

void Comm::accountSendCoalesced(int dest, std::uint64_t logical_count,
                                std::uint64_t logical_bytes,
                                std::size_t physical_bytes) {
  stats_.messages_sent += logical_count;
  stats_.bytes_sent += logical_bytes;
  stats_.physical_messages += 1;
  stats_.physical_bytes += physical_bytes;
  if (sameNode(dest)) {
    stats_.on_node_messages += logical_count;
    stats_.on_node_bytes += logical_bytes;
  } else {
    stats_.off_node_messages += logical_count;
    stats_.off_node_bytes += logical_bytes;
  }
  // No trace event here: the caller attributes logical payloads itself so
  // the trace report stays in logical units (byte conservation per pair).
}

void Comm::push(int dest, int tag, std::vector<std::byte> bytes) {
  assert(dest >= 0 && dest < size());
  group_->boxes_[dest].push(rank_, tag, std::move(bytes));
}

void Comm::sendInternal(int dest, int tag, std::vector<std::byte> bytes) {
  accountSend(dest, bytes.size());
  push(dest, tag, std::move(bytes));
}

void Comm::sendFramed(int dest, int tag, std::vector<std::byte> payload) {
  // Stats and trace account the payload (what the application sent), so
  // byte-conservation invariants hold whether or not framing is active.
  accountSend(dest, payload.size());
  postFramed(dest, tag, std::move(payload));
}

void Comm::postFramed(int dest, int tag, std::vector<std::byte> payload) {
  const std::uint64_t seq = send_seq_[channelKey(dest, tag)]++;
  auto framed = faults::frame(seq, std::move(payload));
  const bool reliable = group_->domain_->reliableEnabled();
  if (reliable) {
    // Deposit the clean frame before the fault decision can touch it: the
    // receiver pulls from here on loss/corruption and prunes on delivery.
    group_->arq_store_.store(rank_, dest, tag, seq, framed);
    arq::noteStored();
  }
  switch (group_->domain_->decide(rank_, dest, tag, seq)) {
    case faults::Action::kDeliver:
      break;
    case faults::Action::kCorrupt:
      faults::corruptFrame(framed, rank_, dest, tag, seq);
      break;
    case faults::Action::kDrop:
      if (reliable) {
        // Leave a loss beacon so the receiver recovers immediately from
        // the store instead of waiting out its RTO timer.
        push(dest, tag, faults::lossBeacon(seq));
        arq::noteBeacon();
      }
      return;  // the network ate it; the receiver's watchdog will notice
    case faults::Action::kDuplicate:
      push(dest, tag, std::vector<std::byte>(framed));
      break;
    case faults::Action::kDelay:
      delayed_.push_back(Delayed{dest, tag, std::move(framed)});
      return;  // held back; flushed after later traffic -> reordering
  }
  push(dest, tag, std::move(framed));
}

void Comm::flushDelayed() {
  for (auto& d : delayed_) push(d.dest, d.tag, std::move(d.bytes));
  delayed_.clear();
}

void Comm::sendCoalesced(int dest, int tag, std::vector<std::byte> segment,
                         std::uint64_t logical_count,
                         std::uint64_t logical_bytes) {
  assert(tag >= 0 && "negative tags are reserved for collectives");
  accountSendCoalesced(dest, logical_count, logical_bytes, segment.size());
  if (group_->domain_->framingEnabled()) {
    postFramed(dest, tag, std::move(segment));
    return;
  }
  push(dest, tag, std::move(segment));
}

void Comm::reserveInbound(std::size_t n) {
  group_->boxes_[rank_].reserveInbound(n);
}

void Comm::throwRankFailed(int source, int tag) const {
  const int dead = group_->detector_.firstDead();
  throw Error(ErrorCode::kRankFailed, rank_, dead >= 0 ? dead : source, tag,
              "rank " + std::to_string(dead) +
                  " declared dead; communicator revoked");
}

detail::Mailbox::Raw Comm::popWatchdog(int source, int tag) {
  const int wd = group_->domain_->watchdogMs();
  auto& det = group_->detector_;
  const int dl = group_->domain_->deadlineMs();
  if (dl > 0 && !det.armed()) det.arm(dl);
  detail::Mailbox::Raw raw;
  if (!det.armed()) {
    // Historical path: one blocking pop, bounded only by the watchdog.
    if (!group_->boxes_[rank_].pop(source, tag, wd * 1000L, raw))
      throw Error(ErrorCode::kTimeout, rank_, source, tag,
                  "recv watchdog fired after " + std::to_string(wd) +
                      "ms; last phase: " + trace::lastPhase(rank_));
    return raw;
  }
  // Failure detection armed: wait in bounded slices so this rank keeps
  // heartbeating while blocked, observes a revocation promptly, and can
  // itself declare a silent peer dead once the deadline passes.
  const long deadline_us = static_cast<long>(det.deadlineMs()) * 1000;
  const long slice_us = std::max(500L, deadline_us / 8);
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    det.beat(rank_);
    if (det.revoked()) throwRankFailed(source, tag);
    if (group_->boxes_[rank_].pop(source, tag, slice_us, raw)) return raw;
    const auto elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (wd > 0 && elapsed_us >= wd * 1000L)
      throw Error(ErrorCode::kTimeout, rank_, source, tag,
                  "recv watchdog fired after " + std::to_string(wd) +
                      "ms; last phase: " + trace::lastPhase(rank_));
    if (elapsed_us >= deadline_us) {
      if (source == kAnySource)
        det.suspectAny();
      else
        det.suspectRank(source);
      if (det.revoked()) throwRankFailed(source, tag);
    }
  }
}

Message Comm::recv(int source, int tag) { return recvImpl(source, tag, true); }

Message Comm::recvUntraced(int source, int tag) {
  return recvImpl(source, tag, false);
}

Message Comm::recvImpl(int source, int tag, bool traced) {
  if (group_->domain_->framingEnabled()) {
    // Our own held-back messages must not deadlock us while we block.
    flushDelayed();
    if (tag >= 0)
      return group_->domain_->reliableEnabled()
                 ? recvReliable(source, tag, traced)
                 : recvFramed(source, tag, traced);
  }
  auto raw = popWatchdog(source, tag);
  Message m;
  m.source = raw.source;
  m.tag = raw.tag;
  m.body = InBuffer(std::move(raw.bytes));
  if (traced && trace::enabled())
    trace::recvAs(rank_, m.source, static_cast<std::int64_t>(m.body.size()),
                  "pcu");
  return m;
}

std::optional<Message> Comm::serveStash(int source, int tag, bool traced) {
  // Serve any stashed out-of-order message that has become current.
  for (auto it = reorder_stash_.begin(); it != reorder_stash_.end(); ++it) {
    if (it->msg.tag != tag) continue;
    if (source != kAnySource && it->msg.source != source) continue;
    auto& expected = recv_seq_[channelKey(it->msg.source, tag)];
    if (it->seq != expected) continue;
    ++expected;
    Message m = std::move(it->msg);
    reorder_stash_.erase(it);
    if (group_->domain_->reliableEnabled())
      group_->arq_store_.ack(m.source, rank_, tag, expected);
    if (traced && trace::enabled())
      trace::recvAs(rank_, m.source, static_cast<std::int64_t>(m.body.size()),
                    "pcu");
    return m;
  }
  return std::nullopt;
}

Message Comm::recvFramed(int source, int tag, bool traced) {
  for (;;) {
    if (auto m = serveStash(source, tag, traced)) return std::move(*m);
    auto raw = popWatchdog(source, tag);
    std::uint64_t seq = 0;
    auto payload =
        faults::unframe(std::move(raw.bytes), seq, rank_, raw.source, tag);
    auto& expected = recv_seq_[channelKey(raw.source, tag)];
    if (seq < expected)
      throw Error(ErrorCode::kDuplicateMessage, rank_, raw.source, tag,
                  "channel seq " + std::to_string(seq) +
                      " already delivered (expected " +
                      std::to_string(expected) + ")");
    Message m;
    m.source = raw.source;
    m.tag = raw.tag;
    m.body = InBuffer(std::move(payload));
    if (seq > expected) {
      // Arrived early (reordered): stash it and keep waiting for the
      // in-sequence message. If that one was dropped, the watchdog turns
      // this wait into a diagnosed kTimeout instead of a hang.
      reorder_stash_.push_back(Stashed{std::move(m), seq});
      continue;
    }
    ++expected;
    if (traced && trace::enabled())
      trace::recvAs(rank_, m.source, static_cast<std::int64_t>(m.body.size()),
                    "pcu");
    return m;
  }
}

void Comm::pullRetransmit(int src, int tag, std::uint64_t seq,
                          std::vector<std::byte> framed) {
  // Model each retransmission crossing the same faulty network: re-run the
  // plan's deterministic decision under an attempt salt. A transient plan
  // soon delivers; a permanent one (p = 1) faults every attempt and the
  // bounded budget converts to a structured error. kDuplicate and kDelay
  // collapse to one immediate delivery — the pull is synchronous, so
  // neither changes what the receiver observes.
  const arq::Config cfg = arq::config();
  for (int attempt = 1; attempt <= cfg.retry_budget; ++attempt) {
    arq::noteRetransmit();
    const auto action = group_->domain_->decide(
        src, rank_, tag, arq::saltSeq(seq, static_cast<std::uint64_t>(attempt)));
    if (action == faults::Action::kCorrupt || action == faults::Action::kDrop)
      continue;  // this retransmission was lost too
    group_->boxes_[rank_].push(src, tag, std::move(framed));
    arq::noteRecovered();
    return;
  }
  throw Error(ErrorCode::kMessageLost, rank_, src, tag,
              "retransmission budget exhausted after " +
                  std::to_string(cfg.retry_budget) +
                  " attempts (channel seq " + std::to_string(seq) + ")");
}

Message Comm::recvReliable(int source, int tag, bool traced) {
  const arq::Config cfg = arq::config();
  auto& box = group_->boxes_[rank_];
  auto& store = group_->arq_store_;
  auto& det = group_->detector_;
  if (const int dl = group_->domain_->deadlineMs(); dl > 0 && !det.armed())
    det.arm(dl);
  const long deadline_us = static_cast<long>(det.deadlineMs()) * 1000;
  const int wd = group_->domain_->watchdogMs();
  const auto start = std::chrono::steady_clock::now();
  long interval_us = cfg.rto_us;
  // What this receiver has delivered so far on (src, tag): frames below
  // this are duplicates, frames at it are next in line.
  auto expectedOf = [&](int src) {
    auto it = recv_seq_.find(channelKey(src, tag));
    return it == recv_seq_.end() ? std::uint64_t{0} : it->second;
  };
  // Pull every store frame on the channel(s) not yet delivered; true when
  // at least one came through (it will surface via the mailbox).
  auto pullChannel = [&](int src) {
    bool recovered = false;
    for (auto& f : store.pending(rank_, src, tag, expectedOf)) {
      pullRetransmit(f.src, tag, f.seq, std::move(f.bytes));
      recovered = true;
    }
    return recovered;
  };
  for (;;) {
    if (auto m = serveStash(source, tag, traced)) return std::move(*m);
    if (det.armed()) {
      det.beat(rank_);
      if (det.revoked()) throwRankFailed(source, tag);
    }
    // Bound the wait by the backoff interval (the RTO scan), the heartbeat
    // slice while failure detection is armed, and, when the watchdog is
    // armed, by its deadline.
    long wait_us = interval_us;
    if (det.armed()) wait_us = std::min(wait_us, std::max(500L, deadline_us / 8));
    if (wd > 0) {
      const auto elapsed_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      const long remain_us = wd * 1000L - static_cast<long>(elapsed_us);
      if (remain_us <= 0)
        throw Error(ErrorCode::kTimeout, rank_, source, tag,
                    "recv watchdog fired after " + std::to_string(wd) +
                        "ms; last phase: " + trace::lastPhase(rank_));
      wait_us = std::min(wait_us, remain_us);
    }
    detail::Mailbox::Raw raw;
    if (!box.pop(source, tag, wait_us, raw)) {
      if (det.armed()) {
        const auto elapsed_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (elapsed_us >= deadline_us) {
          if (source == kAnySource)
            det.suspectAny();
          else
            det.suspectRank(source);
          if (det.revoked()) throwRankFailed(source, tag);
        }
      }
      // RTO fired: scan the store for undelivered frames (covers delayed
      // and reordered traffic whose beacon never existed), then back off.
      if (!pullChannel(source))
        interval_us = std::min(interval_us * 2, static_cast<long>(cfg.max_rto_us));
      continue;
    }
    if (faults::isLossBeacon(raw.bytes)) {
      // The injector dropped (raw.source, tag, seq): recover it from the
      // store right now — this is what keeps the retransmit tax small.
      const std::uint64_t seq = faults::beaconSeq(raw.bytes);
      if (seq >= expectedOf(raw.source))
        if (auto bytes = store.fetch(rank_, raw.source, tag, seq))
          pullRetransmit(raw.source, tag, seq, std::move(*bytes));
      continue;
    }
    std::uint64_t seq = 0;
    std::vector<std::byte> payload;
    try {
      payload = faults::unframe(std::move(raw.bytes), seq, rank_, raw.source,
                                tag);
    } catch (const Error&) {
      // Corrupt frame: its seq field cannot be trusted, so discard it and
      // re-fetch everything undelivered on the source channel.
      arq::noteCorruptDropped();
      pullChannel(raw.source);
      continue;
    }
    auto& expected = recv_seq_[channelKey(raw.source, tag)];
    if (seq < expected) {
      // Sequence-based dedup: injected duplicates and double-recovered
      // frames vanish here instead of raising kDuplicateMessage.
      arq::noteDuplicateDropped();
      continue;
    }
    Message m;
    m.source = raw.source;
    m.tag = raw.tag;
    m.body = InBuffer(std::move(payload));
    if (seq > expected) {
      reorder_stash_.push_back(Stashed{std::move(m), seq});
      continue;
    }
    ++expected;
    // In-order delivery acknowledges the channel prefix: the sender-side
    // store prunes everything below `expected`.
    store.ack(raw.source, rank_, tag, expected);
    arq::noteAcked();
    if (traced && trace::enabled())
      trace::recvAs(rank_, m.source, static_cast<std::int64_t>(m.body.size()),
                    "pcu");
    return m;
  }
}

void Comm::setReliable(bool on) { arq::setReliable(on); }

bool Comm::probe(int source, int tag) {
  return group_->boxes_[rank_].probe(source, tag);
}

void Comm::barrier() {
  const int n = size();
  const int me = rank_;
  // Reduce phase: binomial tree toward rank 0.
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      sendInternal(me - mask, kTagBarrierUp, {});
      break;
    }
    if (me + mask < n) (void)recv(me + mask, kTagBarrierUp);
    mask <<= 1;
  }
  // Release phase: mirror the tree back down. After the loop above, `mask`
  // is this rank's lsb (the bit at which it reported up) for non-zero ranks,
  // or the first power of two >= n for rank 0.
  if (me != 0) (void)recv(me - mask, kTagBarrierDown);
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < n) sendInternal(me + mask, kTagBarrierDown, {});
    mask >>= 1;
  }
}

std::vector<std::byte> Comm::broadcast(int root, std::vector<std::byte> bytes) {
  const int n = size();
  const int me = (rank_ - root + n) % n;  // relabel so root is 0
  // Canonical binomial broadcast (MPICH-style).
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      const int src = ((me - mask) + root) % n;
      Message m = recv(src, kTagBcast);
      bytes = m.body.unpackVector<std::byte>();
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < n) {
      OutBuffer b;
      b.packVector(bytes);
      sendInternal(((me + mask) + root) % n, kTagBcast, std::move(b).take());
    }
    mask >>= 1;
  }
  return bytes;
}

std::vector<std::vector<std::byte>> Comm::gather(int root,
                                                 std::vector<std::byte> bytes) {
  const int n = size();
  const int me = (rank_ - root + n) % n;
  // Each node carries a set of (original rank, payload) pairs up the tree.
  std::vector<std::pair<int, std::vector<std::byte>>> carried;
  carried.emplace_back(rank_, std::move(bytes));
  for (int step = 1; step < n; step <<= 1) {
    if (me & step) {
      OutBuffer b;
      b.pack<std::uint32_t>(static_cast<std::uint32_t>(carried.size()));
      for (auto& [r, payload] : carried) {
        b.pack<std::int32_t>(r);
        b.packVector(payload);
      }
      sendInternal(((me - step) + root) % n, kTagGather, std::move(b).take());
      carried.clear();
      break;
    }
    const int child = me + step;
    if (child < n) {
      Message m = recv((child + root) % n, kTagGather);
      const auto count = m.body.unpack<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto r = m.body.unpack<std::int32_t>();
        carried.emplace_back(r, m.body.unpackVector<std::byte>());
      }
    }
  }
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(n);
    for (auto& [r, payload] : carried) out[r] = std::move(payload);
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgather(
    std::vector<std::byte> bytes) {
  // Recursive doubling: every rank carries a growing set of
  // (origin rank, payload) pairs; after log2(P) pairwise swaps everyone
  // holds all P payloads. This removes the root-0 serialization bottleneck
  // of the old gather+broadcast (root packed and re-sent all P payloads).
  // Non-power-of-two sizes fold the extra ranks in up front (as allreduce).
  const int n = size();
  std::vector<std::pair<int, std::vector<std::byte>>> carried;
  carried.reserve(static_cast<std::size_t>(n));
  carried.emplace_back(rank_, std::move(bytes));
  auto packSet = [&]() {
    OutBuffer b;
    b.pack<std::uint32_t>(static_cast<std::uint32_t>(carried.size()));
    for (auto& [r, payload] : carried) {
      b.pack<std::int32_t>(r);
      b.packVector(payload);
    }
    return std::move(b).take();
  };
  auto mergeSet = [&](Message m) {
    const auto count = m.body.unpack<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto r = m.body.unpack<std::int32_t>();
      carried.emplace_back(r, m.body.unpackVector<std::byte>());
    }
  };
  if (n > 1) {
    int pof2 = 1;
    while (pof2 * 2 <= n) pof2 *= 2;
    const int rem = n - pof2;
    if (rank_ >= pof2) {
      // Extra rank: contribute to the partner, then receive the full set.
      sendInternal(rank_ - pof2, kTagAllgather, packSet());
      carried.clear();
      mergeSet(recv(rank_ - pof2, kTagAllgather));
    } else {
      if (rank_ < rem) mergeSet(recv(rank_ + pof2, kTagAllgather));
      for (int mask = 1; mask < pof2; mask <<= 1) {
        const int peer = rank_ ^ mask;
        sendInternal(peer, kTagAllgather, packSet());
        mergeSet(recv(peer, kTagAllgather));
      }
      if (rank_ < rem) sendInternal(rank_ + pof2, kTagAllgather, packSet());
    }
  }
  std::vector<std::vector<std::byte>> out(n);
  for (auto& [r, payload] : carried) out[r] = std::move(payload);
  return out;
}

long Comm::reduceScatterSum(
    const std::vector<std::pair<int, long>>& contributions) {
  const int n = size();
  // Local pre-reduction into a sparse dest -> sum map.
  std::unordered_map<int, long> acc;
  for (const auto& [d, v] : contributions) {
    assert(d >= 0 && d < n && "reduceScatterSum destination out of range");
    acc[d] += v;
  }
  auto packMap = [](const std::unordered_map<int, long>& m) {
    OutBuffer b;
    b.pack<std::uint32_t>(static_cast<std::uint32_t>(m.size()));
    for (const auto& [d, v] : m) {
      b.pack<std::int32_t>(d);
      b.pack<std::int64_t>(static_cast<std::int64_t>(v));
    }
    return std::move(b).take();
  };
  auto mergeMap = [](Message m, std::unordered_map<int, long>& into) {
    const auto count = m.body.unpack<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto d = m.body.unpack<std::int32_t>();
      into[d] += static_cast<long>(m.body.unpack<std::int64_t>());
    }
  };
  if (n > 1) {
    int pof2 = 1;
    while (pof2 * 2 <= n) pof2 *= 2;
    const int rem = n - pof2;
    if (rank_ >= pof2) {
      // Extra rank: ship the whole sparse map to the partner, then receive
      // the single scalar destined for this rank.
      sendInternal(rank_ - pof2, kTagCount, packMap(acc));
      Message m = recv(rank_ - pof2, kTagCount);
      return static_cast<long>(m.body.unpack<std::int64_t>());
    }
    if (rank_ < rem) mergeMap(recv(rank_ + pof2, kTagCount), acc);
    // Recursive halving over the power-of-two participants: each round the
    // active index window [lo, lo+sz) splits in half; every rank ships the
    // entries owned by the other half to its mirror partner and keeps its
    // own half. Folded destinations d >= pof2 are owned by rank d - pof2.
    // Per-rank traffic is O(map entries * log2 P), independent of P itself
    // when the contribution pattern is sparse (the neighbour-count use).
    int lo = 0;
    int sz = pof2;
    while (sz > 1) {
      const int half = sz / 2;
      const bool lower = rank_ < lo + half;
      const int partner = lower ? rank_ + half : rank_ - half;
      std::unordered_map<int, long> keep, give;
      for (const auto& [d, v] : acc) {
        const int owner = d < pof2 ? d : d - pof2;
        const bool owner_lower = owner < lo + half;
        if (owner_lower == lower)
          keep[d] += v;
        else
          give[d] += v;
      }
      sendInternal(partner, kTagCount, packMap(give));
      acc = std::move(keep);
      mergeMap(recv(partner, kTagCount), acc);
      if (!lower) lo += half;
      sz = half;
    }
    // acc now holds only destinations owned by this rank: rank_ itself and,
    // when rank_ < rem, the folded extra rank_ + pof2 — send the latter its
    // scalar.
    if (rank_ < rem) {
      long extra = 0;
      if (auto it = acc.find(rank_ + pof2); it != acc.end()) extra = it->second;
      OutBuffer b;
      b.pack<std::int64_t>(static_cast<std::int64_t>(extra));
      sendInternal(rank_ + pof2, kTagCount, std::move(b).take());
    }
  }
  const auto it = acc.find(rank_);
  return it == acc.end() ? 0 : it->second;
}

Comm Comm::split(int color, int key, const SplitOptions& opts) {
  auto& g = *group_;
  auto& det = g.detector_;
  std::unique_lock<std::mutex> lock(g.split_mutex_);
  // Generation safety: a fast rank looping straight into the next split must
  // not enroll while the previous round's takers are still draining. The
  // round is "full" from the moment the last rank enrolls until the last
  // taker resets it, so waiting out fullness serializes rounds.
  while (g.split_arrived_ == g.size_)
    g.split_cv_.wait_for(lock, std::chrono::milliseconds(2));
  if (g.split_entries_.empty())
    g.split_entries_.assign(static_cast<std::size_t>(g.size_), {0, 0});
  g.split_entries_[static_cast<std::size_t>(rank_)] = {color, key};
  ++g.split_arrived_;
  g.split_cv_.notify_all();
  // Rendezvous on shared state rather than an allgather: no message traffic
  // means the split composes with an armed failure detector (we keep
  // beating while waiting — a slow peer enrolling late is slow, not dead)
  // and with chaotic fault plans (nothing here can be dropped or corrupted).
  while (g.split_arrived_ < g.size_) {
    g.split_cv_.wait_for(lock, std::chrono::milliseconds(2));
    if (det.armed()) det.beat(rank_);
  }
  // Every rank computes its own color's membership from the frozen entries;
  // ordered by (key, rank) like MPI_Comm_split.
  struct Entry {
    int key;
    int rank;
  };
  std::vector<Entry> members;
  for (int r = 0; r < g.size_; ++r)
    if (g.split_entries_[static_cast<std::size_t>(r)][0] == color)
      members.push_back(Entry{g.split_entries_[static_cast<std::size_t>(r)][1],
                              r});
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });
  const int sub_size = static_cast<int>(members.size());
  int my_index = 0;
  for (int i = 0; i < sub_size; ++i)
    if (members[i].rank == rank_) my_index = i;
  auto it = g.split_groups_.find(color);
  if (it == g.split_groups_.end()) {
    // First rank of this color publishes the subgroup. Fresh mailboxes and
    // ARQ store per subgroup: no cross-color traffic is possible by
    // construction. Machine: shared-memory if all members share a node,
    // else flat.
    bool all_same_node = true;
    for (const auto& m : members)
      if (!machine().sameNode(m.rank, members.front().rank))
        all_same_node = false;
    const Machine sub_machine = all_same_node ? Machine::singleNode(sub_size)
                                              : Machine::flat(sub_size);
    auto domain = opts.isolate_faults ? std::make_shared<faults::Domain>()
                                      : g.domain_;
    auto sub = std::make_shared<Group>(sub_size, sub_machine, domain);
    // An inherited armed detector carries the parent's deadline into the
    // subgroup (mirroring shrink()); an isolated subgroup starts unarmed
    // and arms lazily from its *own* domain's plan.
    if (!opts.isolate_faults && det.armed())
      sub->detector_.arm(det.deadlineMs());
    it = g.split_groups_.emplace(color, std::move(sub)).first;
  }
  auto sub = it->second;
  if (++g.split_taken_ == g.size_) {
    // Last rank out resets the rendezvous for the next split generation.
    g.split_entries_.clear();
    g.split_groups_.clear();
    g.split_arrived_ = 0;
    g.split_taken_ = 0;
    g.split_cv_.notify_all();
  }
  return Comm(std::move(sub), my_index);
}

void Comm::rankFaultPoint() {
  auto& dom = *group_->domain_;
  auto& det = group_->detector_;
  const int dl = dom.deadlineMs();
  if (dl > 0 && !det.armed()) det.arm(dl);
  if (det.armed()) det.beat(rank_);
  if (!dom.hasPhaseEvent()) return;
  const std::uint64_t phase = phased_calls_++;
  // An elastic join is not a fault: record the knock and keep going — the
  // group admits the newcomers at its next quiescent point via grow().
  // Consumed by whichever rank reaches the scheduled boundary first; every
  // rank then observes it through joinPending().
  const int joiners = dom.fireJoin(phase);
  if (joiners > 0)
    group_->join_pending_.fetch_add(joiners, std::memory_order_relaxed);
  if (dom.fireKill(rank_, phase))
    throw failure::RankKilled(
        rank_, "kill fault at phase boundary " + std::to_string(phase));
  if (dom.fireHang(rank_, phase)) {
    // Go silent: stop heartbeating, send and receive nothing. Peers must
    // detect the silence through the heartbeat deadline; their revocation
    // then releases this rank to die. The silence span they measure is the
    // detection latency the tests bound.
    while (!det.revoked())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    throw failure::RankKilled(
        rank_, "hang fault at phase boundary " + std::to_string(phase));
  }
}

Comm Comm::shrink() {
  auto& g = *group_;
  auto& det = g.detector_;
  std::unique_lock<std::mutex> lock(g.shrink_mutex_);
  if (g.shrink_arrived_.empty())
    g.shrink_arrived_.assign(static_cast<std::size_t>(g.size_), 0);
  g.shrink_arrived_[static_cast<std::size_t>(rank_)] = 1;
  g.shrink_cv_.notify_all();
  auto allIn = [&]() {
    for (int r = 0; r < g.size_; ++r)
      if (!g.shrink_arrived_[static_cast<std::size_t>(r)] && !det.dead(r))
        return false;
    return true;
  };
  // Rendezvous, not a collective: the dead rank would deadlock any tree or
  // doubling pattern, so survivors meet on shared state. A rank that stays
  // silent past the deadline is declared dead right here, which is what
  // lets the rendezvous complete when the failure was a hang.
  while (!g.shrink_group_ && !allIn()) {
    g.shrink_cv_.wait_for(lock, std::chrono::milliseconds(2));
    det.beat(rank_);
    for (int r = 0; r < g.size_; ++r)
      if (!g.shrink_arrived_[static_cast<std::size_t>(r)]) det.suspectRank(r);
  }
  if (!g.shrink_group_) {
    // First rank to observe completion freezes the survivor set (everyone
    // who arrived) and publishes the shrunken group. Fresh mailboxes: any
    // in-flight traffic of the revoked group is deliberately discarded.
    std::vector<int> survivors;
    for (int r = 0; r < g.size_; ++r)
      if (g.shrink_arrived_[static_cast<std::size_t>(r)]) survivors.push_back(r);
    const int sub_size = static_cast<int>(survivors.size());
    auto sub =
        std::make_shared<Group>(sub_size, Machine::flat(sub_size), g.domain_);
    if (det.armed()) sub->detector_.arm(det.deadlineMs());
    g.shrink_survivors_ = std::move(survivors);
    g.shrink_group_ = std::move(sub);
    failure::noteShrink();
    g.shrink_cv_.notify_all();
  }
  // Dense renumbering: this rank's position in the sorted survivor list.
  int new_rank = -1;
  for (std::size_t i = 0; i < g.shrink_survivors_.size(); ++i)
    if (g.shrink_survivors_[i] == rank_) new_rank = static_cast<int>(i);
  if (new_rank < 0)
    throw failure::RankKilled(
        rank_, "declared dead before the shrink agreement froze");
  auto sub = g.shrink_group_;
  if (++g.shrink_taken_ == g.shrink_survivors_.size()) {
    // Last survivor out resets the rendezvous so the group could shrink
    // again after a further failure.
    g.shrink_arrived_.clear();
    g.shrink_group_.reset();
    g.shrink_survivors_.clear();
    g.shrink_taken_ = 0;
  }
  return Comm(std::move(sub), new_rank);
}

Comm Comm::grow(int k) {
  if (k < 1)
    throw Error(ErrorCode::kValidation, rank_,
                "grow(k) wants k >= 1, got " + std::to_string(k));
  auto& g = *group_;
  auto& det = g.detector_;
  std::unique_lock<std::mutex> lock(g.grow_mutex_);
  // Rendezvous on shared state, mirroring shrink(): no collective, so the
  // call composes with an armed detector (we keep beating while waiting —
  // a slow peer is slow, not dead). Unlike shrink, every rank is alive and
  // must arrive; the first arrival fixes the joiner count and mismatched
  // calls are a caller bug surfaced as validation errors everywhere.
  if (g.grow_count_ < 0)
    g.grow_count_ = k;
  else if (g.grow_count_ != k)
    g.grow_poisoned_ = true;  // still counts as arrived: nobody may hang
  ++g.grow_arrived_;
  g.grow_cv_.notify_all();
  while (!g.grow_group_ && g.grow_arrived_ < g.size_) {
    g.grow_cv_.wait_for(lock, std::chrono::milliseconds(2));
    if (det.armed()) det.beat(rank_);
  }
  if (g.grow_poisoned_) {
    const int agreed = g.grow_count_;
    if (++g.grow_taken_ == g.size_) {
      g.grow_arrived_ = 0;
      g.grow_count_ = -1;
      g.grow_taken_ = 0;
      g.grow_poisoned_ = false;
    }
    throw Error(ErrorCode::kValidation, rank_,
                "grow rendezvous disagreement: this rank wants " +
                    std::to_string(k) + " joiners, the first arrival fixed " +
                    std::to_string(agreed));
  }
  if (!g.grow_group_) {
    // First completer publishes the expanded group. Fresh mailboxes and a
    // fresh ARQ store: every channel — including the ones that will touch a
    // newcomer — starts from sequence zero with empty coalescing state, so
    // no newcomer can ever observe a stale frame of the old group.
    const int new_size = g.size_ + k;
    auto sub =
        std::make_shared<Group>(new_size, Machine::flat(new_size), g.domain_);
    if (det.armed()) sub->detector_.arm(det.deadlineMs());
    g.grow_group_ = std::move(sub);
    failure::noteGrow(k);
    g.grow_cv_.notify_all();
  }
  auto sub = g.grow_group_;
  // The pending join=K@P knock (if that is what triggered this grow) is now
  // served; clear it on the old group so nobody re-admits.
  g.join_pending_.store(0, std::memory_order_relaxed);
  if (++g.grow_taken_ == g.size_) {
    // Last rank out resets the rendezvous so the group could grow again.
    g.grow_arrived_ = 0;
    g.grow_count_ = -1;
    g.grow_group_.reset();
    g.grow_taken_ = 0;
  }
  // Existing ranks keep their numbers; newcomers fill size()..size()+k-1,
  // so the numbering stays dense with no renaming traffic.
  return Comm(std::move(sub), rank_);
}

}  // namespace pcu
