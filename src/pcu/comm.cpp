#include "pcu/comm.hpp"

#include <algorithm>
#include <cassert>

#include "pcu/trace.hpp"

namespace pcu {
namespace detail {

void Mailbox::push(int source, int tag, std::vector<std::byte> bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Stored{source, tag, std::move(bytes)});
  }
  cv_.notify_all();
}

Message Mailbox::pop(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Stored& s) { return matches(s, source, tag); });
    if (it != queue_.end()) {
      Message m;
      m.source = it->source;
      m.tag = it->tag;
      m.body = InBuffer(std::move(it->bytes));
      queue_.erase(it);
      return m;
    }
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Stored& s) { return matches(s, source, tag); });
}

}  // namespace detail

Group::Group(int size, Machine machine)
    : size_(size), machine_(machine), boxes_(size), split_scratch_(size) {
  assert(size > 0);
  // Default machine: all ranks on one node (pure shared memory).
  if (machine_.totalCores() < size_) machine_ = Machine::singleNode(size_);
}

Comm::Comm(std::shared_ptr<Group> group, int rank)
    : group_(std::move(group)), rank_(rank) {
  assert(rank_ >= 0 && rank_ < group_->size());
}

void Comm::send(int dest, int tag, const OutBuffer& buf) {
  assert(tag >= 0 && "negative tags are reserved for collectives");
  send(dest, tag, std::vector<std::byte>(buf.storage()));
}

void Comm::send(int dest, int tag, std::vector<std::byte> bytes) {
  assert(tag >= 0 && "negative tags are reserved for collectives");
  sendInternal(dest, tag, std::move(bytes));
}

void Comm::sendInternal(int dest, int tag, std::vector<std::byte> bytes) {
  assert(dest >= 0 && dest < size());
  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes.size();
  if (sameNode(dest)) {
    stats_.on_node_messages += 1;
    stats_.on_node_bytes += bytes.size();
  } else {
    stats_.off_node_messages += 1;
    stats_.off_node_bytes += bytes.size();
  }
  if (trace::enabled())
    trace::sendAs(rank_, dest, static_cast<std::int64_t>(bytes.size()),
                  "pcu");
  group_->boxes_[dest].push(rank_, tag, std::move(bytes));
}

Message Comm::recv(int source, int tag) {
  Message m = group_->boxes_[rank_].pop(source, tag);
  if (trace::enabled())
    trace::recvAs(rank_, m.source, static_cast<std::int64_t>(m.body.size()),
                  "pcu");
  return m;
}

bool Comm::probe(int source, int tag) {
  return group_->boxes_[rank_].probe(source, tag);
}

void Comm::barrier() {
  const int n = size();
  const int me = rank_;
  // Reduce phase: binomial tree toward rank 0.
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      sendInternal(me - mask, kTagBarrierUp, {});
      break;
    }
    if (me + mask < n) (void)recv(me + mask, kTagBarrierUp);
    mask <<= 1;
  }
  // Release phase: mirror the tree back down. After the loop above, `mask`
  // is this rank's lsb (the bit at which it reported up) for non-zero ranks,
  // or the first power of two >= n for rank 0.
  if (me != 0) (void)recv(me - mask, kTagBarrierDown);
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < n) sendInternal(me + mask, kTagBarrierDown, {});
    mask >>= 1;
  }
}

std::vector<std::byte> Comm::broadcast(int root, std::vector<std::byte> bytes) {
  const int n = size();
  const int me = (rank_ - root + n) % n;  // relabel so root is 0
  // Canonical binomial broadcast (MPICH-style).
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      const int src = ((me - mask) + root) % n;
      Message m = recv(src, kTagBcast);
      bytes = m.body.unpackVector<std::byte>();
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < n) {
      OutBuffer b;
      b.packVector(bytes);
      sendInternal(((me + mask) + root) % n, kTagBcast, std::move(b).take());
    }
    mask >>= 1;
  }
  return bytes;
}

std::vector<std::vector<std::byte>> Comm::gather(int root,
                                                 std::vector<std::byte> bytes) {
  const int n = size();
  const int me = (rank_ - root + n) % n;
  // Each node carries a set of (original rank, payload) pairs up the tree.
  std::vector<std::pair<int, std::vector<std::byte>>> carried;
  carried.emplace_back(rank_, std::move(bytes));
  for (int step = 1; step < n; step <<= 1) {
    if (me & step) {
      OutBuffer b;
      b.pack<std::uint32_t>(static_cast<std::uint32_t>(carried.size()));
      for (auto& [r, payload] : carried) {
        b.pack<std::int32_t>(r);
        b.packVector(payload);
      }
      sendInternal(((me - step) + root) % n, kTagGather, std::move(b).take());
      carried.clear();
      break;
    }
    const int child = me + step;
    if (child < n) {
      Message m = recv((child + root) % n, kTagGather);
      const auto count = m.body.unpack<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto r = m.body.unpack<std::int32_t>();
        carried.emplace_back(r, m.body.unpackVector<std::byte>());
      }
    }
  }
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(n);
    for (auto& [r, payload] : carried) out[r] = std::move(payload);
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgather(
    std::vector<std::byte> bytes) {
  auto gathered = gather(0, std::move(bytes));
  OutBuffer b;
  if (rank_ == 0) {
    b.pack<std::uint32_t>(static_cast<std::uint32_t>(gathered.size()));
    for (auto& g : gathered) b.packVector(g);
  }
  auto flat = broadcast(0, std::move(b).take());
  InBuffer in(std::move(flat));
  const auto count = in.unpack<std::uint32_t>();
  std::vector<std::vector<std::byte>> out(count);
  for (std::uint32_t i = 0; i < count; ++i) out[i] = in.unpackVector<std::byte>();
  return out;
}

Comm Comm::split(int color, int key) {
  struct Entry {
    int color;
    int key;
    int rank;
  };
  auto colors = allgatherValue(color);
  auto keys = allgatherValue(key);
  std::vector<Entry> members;
  for (int r = 0; r < size(); ++r)
    if (colors[r] == color) members.push_back(Entry{colors[r], keys[r], r});
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });
  const int sub_size = static_cast<int>(members.size());
  int my_index = 0;
  for (int i = 0; i < sub_size; ++i)
    if (members[i].rank == rank_) my_index = i;
  const int leader = members.front().rank;

  // Subgroup machine: shared-memory if all members share a node, else flat.
  bool all_same_node = true;
  for (const auto& m : members)
    if (!machine().sameNode(m.rank, leader)) all_same_node = false;
  const Machine sub_machine = all_same_node ? Machine::singleNode(sub_size)
                                            : Machine::flat(sub_size);

  if (rank_ == leader) {
    auto sub = std::make_shared<Group>(sub_size, sub_machine);
    {
      std::lock_guard<std::mutex> lock(group_->split_mutex_);
      group_->split_scratch_[rank_] = sub;
    }
  }
  barrier();
  std::shared_ptr<Group> sub;
  {
    std::lock_guard<std::mutex> lock(group_->split_mutex_);
    sub = group_->split_scratch_[leader];
  }
  barrier();
  if (rank_ == leader) {
    std::lock_guard<std::mutex> lock(group_->split_mutex_);
    group_->split_scratch_[rank_].reset();
  }
  return Comm(std::move(sub), my_index);
}

}  // namespace pcu
