#include "pcu/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>

#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/trace.hpp"

namespace pcu {
namespace detail {

void Mailbox::push(int source, int tag, std::vector<std::byte> bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Raw{source, tag, std::move(bytes)});
  }
  cv_.notify_all();
}

bool Mailbox::pop(int source, int tag, int timeout_ms, Raw& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Raw& s) { return matches(s, source, tag); });
    if (it != queue_.end()) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
    if (timeout_ms <= 0) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return false;
    }
  }
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Raw& s) { return matches(s, source, tag); });
}

}  // namespace detail

Group::Group(int size, Machine machine)
    : size_(size), machine_(machine), boxes_(size), split_scratch_(size) {
  assert(size > 0);
  // Default machine: all ranks on one node (pure shared memory).
  if (machine_.totalCores() < size_) machine_ = Machine::singleNode(size_);
}

Comm::Comm(std::shared_ptr<Group> group, int rank)
    : group_(std::move(group)), rank_(rank) {
  assert(rank_ >= 0 && rank_ < group_->size());
}

void Comm::send(int dest, int tag, const OutBuffer& buf) {
  assert(tag >= 0 && "negative tags are reserved for collectives");
  send(dest, tag, std::vector<std::byte>(buf.storage()));
}

void Comm::send(int dest, int tag, std::vector<std::byte> bytes) {
  assert(tag >= 0 && "negative tags are reserved for collectives");
  if (faults::framingEnabled()) {
    sendFramed(dest, tag, std::move(bytes));
    return;
  }
  sendInternal(dest, tag, std::move(bytes));
}

void Comm::accountSend(int dest, std::size_t payload_bytes) {
  stats_.messages_sent += 1;
  stats_.bytes_sent += payload_bytes;
  if (sameNode(dest)) {
    stats_.on_node_messages += 1;
    stats_.on_node_bytes += payload_bytes;
  } else {
    stats_.off_node_messages += 1;
    stats_.off_node_bytes += payload_bytes;
  }
  if (trace::enabled())
    trace::sendAs(rank_, dest, static_cast<std::int64_t>(payload_bytes),
                  "pcu");
}

void Comm::push(int dest, int tag, std::vector<std::byte> bytes) {
  assert(dest >= 0 && dest < size());
  group_->boxes_[dest].push(rank_, tag, std::move(bytes));
}

void Comm::sendInternal(int dest, int tag, std::vector<std::byte> bytes) {
  accountSend(dest, bytes.size());
  push(dest, tag, std::move(bytes));
}

void Comm::sendFramed(int dest, int tag, std::vector<std::byte> payload) {
  // Stats and trace account the payload (what the application sent), so
  // byte-conservation invariants hold whether or not framing is active.
  accountSend(dest, payload.size());
  const std::uint64_t seq = send_seq_[channelKey(dest, tag)]++;
  auto framed = faults::frame(seq, std::move(payload));
  switch (faults::decide(rank_, dest, tag, seq)) {
    case faults::Action::kDeliver:
      break;
    case faults::Action::kCorrupt:
      faults::corruptFrame(framed, rank_, dest, tag, seq);
      break;
    case faults::Action::kDrop:
      return;  // the network ate it; the receiver's watchdog will notice
    case faults::Action::kDuplicate:
      push(dest, tag, std::vector<std::byte>(framed));
      break;
    case faults::Action::kDelay:
      delayed_.push_back(Delayed{dest, tag, std::move(framed)});
      return;  // held back; flushed after later traffic -> reordering
  }
  push(dest, tag, std::move(framed));
}

void Comm::flushDelayed() {
  for (auto& d : delayed_) push(d.dest, d.tag, std::move(d.bytes));
  delayed_.clear();
}

detail::Mailbox::Raw Comm::popWatchdog(int source, int tag) {
  const int wd = faults::watchdogMs();
  detail::Mailbox::Raw raw;
  if (!group_->boxes_[rank_].pop(source, tag, wd, raw))
    throw Error(ErrorCode::kTimeout, rank_, source, tag,
                "recv watchdog fired after " + std::to_string(wd) +
                    "ms; last phase: " + trace::lastPhase(rank_));
  return raw;
}

Message Comm::recv(int source, int tag) {
  if (faults::framingEnabled()) {
    // Our own held-back messages must not deadlock us while we block.
    flushDelayed();
    if (tag >= 0) return recvFramed(source, tag);
  }
  auto raw = popWatchdog(source, tag);
  Message m;
  m.source = raw.source;
  m.tag = raw.tag;
  m.body = InBuffer(std::move(raw.bytes));
  if (trace::enabled())
    trace::recvAs(rank_, m.source, static_cast<std::int64_t>(m.body.size()),
                  "pcu");
  return m;
}

Message Comm::recvFramed(int source, int tag) {
  for (;;) {
    // Serve any stashed out-of-order message that has become current.
    for (auto it = reorder_stash_.begin(); it != reorder_stash_.end(); ++it) {
      if (it->msg.tag != tag) continue;
      if (source != kAnySource && it->msg.source != source) continue;
      auto& expected = recv_seq_[channelKey(it->msg.source, tag)];
      if (it->seq != expected) continue;
      ++expected;
      Message m = std::move(it->msg);
      reorder_stash_.erase(it);
      if (trace::enabled())
        trace::recvAs(rank_, m.source,
                      static_cast<std::int64_t>(m.body.size()), "pcu");
      return m;
    }
    auto raw = popWatchdog(source, tag);
    std::uint64_t seq = 0;
    auto payload =
        faults::unframe(std::move(raw.bytes), seq, rank_, raw.source, tag);
    auto& expected = recv_seq_[channelKey(raw.source, tag)];
    if (seq < expected)
      throw Error(ErrorCode::kDuplicateMessage, rank_, raw.source, tag,
                  "channel seq " + std::to_string(seq) +
                      " already delivered (expected " +
                      std::to_string(expected) + ")");
    Message m;
    m.source = raw.source;
    m.tag = raw.tag;
    m.body = InBuffer(std::move(payload));
    if (seq > expected) {
      // Arrived early (reordered): stash it and keep waiting for the
      // in-sequence message. If that one was dropped, the watchdog turns
      // this wait into a diagnosed kTimeout instead of a hang.
      reorder_stash_.push_back(Stashed{std::move(m), seq});
      continue;
    }
    ++expected;
    if (trace::enabled())
      trace::recvAs(rank_, m.source, static_cast<std::int64_t>(m.body.size()),
                    "pcu");
    return m;
  }
}

bool Comm::probe(int source, int tag) {
  return group_->boxes_[rank_].probe(source, tag);
}

void Comm::barrier() {
  const int n = size();
  const int me = rank_;
  // Reduce phase: binomial tree toward rank 0.
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      sendInternal(me - mask, kTagBarrierUp, {});
      break;
    }
    if (me + mask < n) (void)recv(me + mask, kTagBarrierUp);
    mask <<= 1;
  }
  // Release phase: mirror the tree back down. After the loop above, `mask`
  // is this rank's lsb (the bit at which it reported up) for non-zero ranks,
  // or the first power of two >= n for rank 0.
  if (me != 0) (void)recv(me - mask, kTagBarrierDown);
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < n) sendInternal(me + mask, kTagBarrierDown, {});
    mask >>= 1;
  }
}

std::vector<std::byte> Comm::broadcast(int root, std::vector<std::byte> bytes) {
  const int n = size();
  const int me = (rank_ - root + n) % n;  // relabel so root is 0
  // Canonical binomial broadcast (MPICH-style).
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      const int src = ((me - mask) + root) % n;
      Message m = recv(src, kTagBcast);
      bytes = m.body.unpackVector<std::byte>();
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < n) {
      OutBuffer b;
      b.packVector(bytes);
      sendInternal(((me + mask) + root) % n, kTagBcast, std::move(b).take());
    }
    mask >>= 1;
  }
  return bytes;
}

std::vector<std::vector<std::byte>> Comm::gather(int root,
                                                 std::vector<std::byte> bytes) {
  const int n = size();
  const int me = (rank_ - root + n) % n;
  // Each node carries a set of (original rank, payload) pairs up the tree.
  std::vector<std::pair<int, std::vector<std::byte>>> carried;
  carried.emplace_back(rank_, std::move(bytes));
  for (int step = 1; step < n; step <<= 1) {
    if (me & step) {
      OutBuffer b;
      b.pack<std::uint32_t>(static_cast<std::uint32_t>(carried.size()));
      for (auto& [r, payload] : carried) {
        b.pack<std::int32_t>(r);
        b.packVector(payload);
      }
      sendInternal(((me - step) + root) % n, kTagGather, std::move(b).take());
      carried.clear();
      break;
    }
    const int child = me + step;
    if (child < n) {
      Message m = recv((child + root) % n, kTagGather);
      const auto count = m.body.unpack<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto r = m.body.unpack<std::int32_t>();
        carried.emplace_back(r, m.body.unpackVector<std::byte>());
      }
    }
  }
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(n);
    for (auto& [r, payload] : carried) out[r] = std::move(payload);
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgather(
    std::vector<std::byte> bytes) {
  auto gathered = gather(0, std::move(bytes));
  OutBuffer b;
  if (rank_ == 0) {
    b.pack<std::uint32_t>(static_cast<std::uint32_t>(gathered.size()));
    for (auto& g : gathered) b.packVector(g);
  }
  auto flat = broadcast(0, std::move(b).take());
  InBuffer in(std::move(flat));
  const auto count = in.unpack<std::uint32_t>();
  std::vector<std::vector<std::byte>> out(count);
  for (std::uint32_t i = 0; i < count; ++i) out[i] = in.unpackVector<std::byte>();
  return out;
}

Comm Comm::split(int color, int key) {
  struct Entry {
    int color;
    int key;
    int rank;
  };
  auto colors = allgatherValue(color);
  auto keys = allgatherValue(key);
  std::vector<Entry> members;
  for (int r = 0; r < size(); ++r)
    if (colors[r] == color) members.push_back(Entry{colors[r], keys[r], r});
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });
  const int sub_size = static_cast<int>(members.size());
  int my_index = 0;
  for (int i = 0; i < sub_size; ++i)
    if (members[i].rank == rank_) my_index = i;
  const int leader = members.front().rank;

  // Subgroup machine: shared-memory if all members share a node, else flat.
  bool all_same_node = true;
  for (const auto& m : members)
    if (!machine().sameNode(m.rank, leader)) all_same_node = false;
  const Machine sub_machine = all_same_node ? Machine::singleNode(sub_size)
                                            : Machine::flat(sub_size);

  if (rank_ == leader) {
    auto sub = std::make_shared<Group>(sub_size, sub_machine);
    {
      std::lock_guard<std::mutex> lock(group_->split_mutex_);
      group_->split_scratch_[rank_] = sub;
    }
  }
  barrier();
  std::shared_ptr<Group> sub;
  {
    std::lock_guard<std::mutex> lock(group_->split_mutex_);
    sub = group_->split_scratch_[leader];
  }
  barrier();
  if (rank_ == leader) {
    std::lock_guard<std::mutex> lock(group_->split_mutex_);
    group_->split_scratch_[rank_].reset();
  }
  return Comm(std::move(sub), my_index);
}

}  // namespace pcu
