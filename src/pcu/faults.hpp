#ifndef PUMI_PCU_FAULTS_HPP
#define PUMI_PCU_FAULTS_HPP

/// \file faults.hpp
/// \brief Deterministic fault injection and message framing/verification.
///
/// The paper's algorithms assume a perfectly reliable transport. This
/// subsystem makes that assumption testable: under an explicit FaultPlan
/// (programmatic via setPlan(), or from the PUMI_FAULTS environment
/// variable) the send paths of pcu::Comm and dist::Network deterministically
/// corrupt payload bytes, drop or duplicate messages, delay/reorder
/// deliveries, and stall a rank — every decision is a pure function of
/// (seed, src, dst, tag, per-channel sequence number), so a seeded chaos
/// run replays bit-identically.
///
/// Hardening rides on the same switch: whenever a plan is active (or
/// checksum-verify mode is on) every user-tag message is framed with a
/// header carrying a magic word, a per-(src,dst,tag)-channel sequence
/// number, and a CRC32 of the payload. Receivers verify the frame and
/// surface corruption, duplication, loss and reordering as structured
/// pcu::Error values instead of undefined behaviour. With no plan active
/// the framing code is never entered: the hot path pays one relaxed atomic
/// load.
///
/// PUMI_FAULTS syntax (comma-separated key=value):
///   seed=42            deterministic stream seed
///   corrupt=0.01       per-message probability of payload corruption
///   drop=0.01          per-message probability of dropping
///   dup=0.01           per-message probability of duplication
///   delay=0.02         per-message probability of delayed (reordered) delivery
///   stall=R:N          rank R sleeps at its next N phased-exchange steps
///   stallms=M          stall sleep per step, milliseconds (default 2)
///   kill=R@P           rank R dies at its P-th hardened phase boundary
///   hang=R@P           rank R goes silent (no heartbeats) at boundary P
///   join=K@P           K new ranks ask to join at phase boundary P (an
///                      elastic scale-out event, not a fault: the live
///                      group admits them via Comm::grow / dist elastic)
///   deadline=MS        heartbeat deadline before a silent rank is declared
///                      dead (default 50 while a kill/hang is scheduled)
///   watchdog=MS        blocking-receive watchdog timeout, ms (0 = off)
///   checksum=1         frame+verify only, no injection ("checksum-verify")
///
/// Storage fault tokens (decided by the pario::File shim, pure in
/// (seed, path-hash, op, offset) — the path hash covers the file's base
/// name only, so a seeded matrix replays identically across temp dirs):
///   iobitrot=0.01      per-read probability of a flipped byte in the
///                      returned buffer (at-rest corruption, seen on read)
///   iotorn=0.01        per-write probability the write persists only a
///                      prefix yet reports success (torn write)
///   ioshort=0.01       per-op probability of a short transfer (fewer
///                      bytes than requested, honest return count)
///   ioenospc=0.01      per-write probability of ENOSPC: the write fails
///                      with a structured pcu::Error(kIoFault)
///   iostall=0.01       per-op probability of sleeping iostallms first
///   iostallms=M        stall sleep per stalled I/O op, ms (default 1)
///
/// I/O faults gate only the storage shim: they do not arm message framing
/// or transactional mode (injects() ignores them; ioInjects() reports them).
///
/// Memory fault token (decided by the integrity armor at its hardened
/// audit boundaries, pure in (seed, rank, part, section, offset) — a
/// seeded memflip matrix replays bit-identically):
///   memflip=N@P[:target]  N bits flip in live part state at the P-th
///                      integrity boundary of the run. The optional target
///                      restricts the flips to one section family:
///                      pool (entity pools), tag (tag payloads),
///                      remotes (remote/ghost copy tables), csr (cached
///                      adjacency arrays); absent = any section.
///
/// Like the storage tokens, memflip arms neither message framing nor the
/// transactional snapshot machinery (injects() and ioInjects() both ignore
/// it; memInjects() reports it). It fires consume-once through
/// core::integrity's narrow injection hook so flips land in real live
/// state, not in copies.
///
/// Exact-duplicate keys in one spec (e.g. "kill=2@5,kill=3@7") are rejected
/// with kValidation naming both offending tokens — a plan with a silently
/// overwritten schedule would replay differently than its spec reads.
///
/// Phase-event composition order is a contract: when several scheduled
/// events target the same @<phase> boundary, they fire join, then kill,
/// then hang — scale-out knocks are recorded before any fault can abort
/// the phase — and every per-message fault (corrupt/drop/dup/delay) of
/// that phase is decided after the boundary's phase events ran. Both
/// hardened boundaries (pcu::Comm::rankFaultPoint and
/// dist::Network::maybeFireRankFault) enforce this order.
///
/// Plans must only be installed/cleared at quiescent points (no concurrent
/// sends/receives) — typically around a pcu::run() or a distributed mesh
/// operation.
///
/// --- fault domains (multi-tenant scoping) --------------------------------
/// All injector state lives in a faults::Domain. The process has one
/// default domain (latched from PUMI_FAULTS) and every thread has an
/// *ambient* domain — the default unless a DomainScope is active. The free
/// functions below (setPlan, decide, fireKill, ...) route through the
/// ambient domain, so existing single-tenant code is unchanged, while a
/// service layer can give each tenant its own Domain: installing a chaos
/// plan there injects faults only into traffic decided under that domain.
/// pcu::Group carries a domain too (see Comm::faultDomain), so subgroups
/// carved by Comm::split can be fault-isolated from their parent group.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "pcu/error.hpp"

namespace pcu {
class Comm;
}

namespace pcu::faults {

/// A scheduled whole-rank fault: rank `rank` dies (kill) or goes silent
/// (hang) at its `phase`-th hardened phase boundary — phased-exchange entry
/// under pcu::run, a deliverAll boundary under dist::Network. Fires at most
/// once per installed plan.
struct RankFault {
  int rank = -1;
  int phase = -1;
  [[nodiscard]] bool scheduled() const { return rank >= 0 && phase >= 0; }
};

/// A scheduled elastic join: `count` new ranks knock at hardened phase
/// boundary `phase`. Not a fault — nothing breaks — but it shares the
/// fault plan's strict parsing and deterministic phase indexing so chaos
/// scenarios can scale out mid-storm. Fires at most once per installed
/// plan.
struct RankJoin {
  int count = 0;
  int phase = -1;
  [[nodiscard]] bool scheduled() const { return count > 0 && phase >= 0; }
};

/// Which section family a memflip restricts itself to. kAny flips anywhere
/// the integrity ledger covers.
enum class MemTarget : std::uint8_t { kAny, kPool, kTag, kRemotes, kCsr };

/// Spelling of a MemTarget as it appears in a memflip token.
const char* memTargetName(MemTarget t);

/// A scheduled in-memory corruption burst: `bits` bits flip in live part
/// state at the `phase`-th integrity audit boundary of the run, restricted
/// to the `target` section family. Fires at most once per installed plan,
/// through core::integrity's injection hook.
struct MemFlip {
  int bits = 0;
  int phase = -1;
  MemTarget target = MemTarget::kAny;
  [[nodiscard]] bool scheduled() const { return bits > 0 && phase >= 0; }
};

/// A deterministic fault schedule. Probabilities are per message in [0,1].
struct FaultPlan {
  std::uint64_t seed = 1;
  double corrupt = 0.0;
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  int stall_rank = -1;   ///< rank to stall (-1: none)
  int stall_steps = 0;   ///< phased-exchange steps the rank stalls for
  int stall_ms = 2;      ///< sleep per stalled step
  RankFault kill;        ///< whole-rank death (failure detection kicks in)
  RankFault hang;        ///< whole-rank silence (detected like a death)
  RankJoin join;         ///< elastic scale-out: K new ranks at boundary P
  int deadline_ms = 0;   ///< heartbeat deadline; 0 = default when kill/hang
  int watchdog_ms = 0;   ///< blocking-recv timeout; 0 disables the watchdog
  bool checksum_only = false;  ///< frame + verify without injecting faults
  double iobitrot = 0.0;  ///< per-read probability of a flipped byte
  double iotorn = 0.0;    ///< per-write probability of a torn (prefix) write
  double ioshort = 0.0;   ///< per-op probability of a short transfer
  double ioenospc = 0.0;  ///< per-write probability of ENOSPC failure
  double iostall = 0.0;   ///< per-op probability of an iostallms sleep
  int iostall_ms = 1;     ///< sleep per stalled I/O op
  MemFlip memflip;        ///< in-memory bit-flip burst at an audit boundary

  /// Message-path injection gate. I/O and memory faults are deliberately
  /// excluded: a storage- or memory-only plan must not arm framing or
  /// transactional mode.
  [[nodiscard]] bool injects() const {
    return corrupt > 0 || drop > 0 || duplicate > 0 || delay > 0 ||
           stall_steps > 0 || kill.scheduled() || hang.scheduled();
  }
  /// Storage-path injection gate (the pario::File shim's one-load check).
  [[nodiscard]] bool ioInjects() const {
    return iobitrot > 0 || iotorn > 0 || ioshort > 0 || ioenospc > 0 ||
           iostall > 0;
  }
  /// Memory-path injection gate (core::integrity's one-load check). Also
  /// what arms the integrity ledger by default under a chaos plan.
  [[nodiscard]] bool memInjects() const { return memflip.scheduled(); }
};

/// Parse a PUMI_FAULTS-style spec. Strict: every value must consume its
/// whole token (no trailing characters, no signs on unsigned fields, no
/// out-of-range probabilities), and no key may appear twice; malformed
/// input throws pcu::Error(kValidation) naming the bad token (both tokens,
/// for a duplicate).
FaultPlan parsePlan(const std::string& spec);

/// What the injector decides for one message.
enum class Action : std::uint8_t {
  kDeliver,
  kCorrupt,
  kDrop,
  kDuplicate,
  kDelay,
};

/// Which side of the storage shim an I/O decision is for.
enum class IoOp : std::uint8_t { kRead, kWrite };

/// What the injector decides for one storage operation.
enum class IoAction : std::uint8_t {
  kOk,
  kBitrot,  ///< reads: one byte of the returned buffer is flipped
  kTorn,    ///< writes: only a prefix persists, success is reported
  kShort,   ///< either: fewer bytes transfer than requested
  kEnospc,  ///< writes: fail with pcu::Error(kIoFault) (device full)
  kStall,   ///< either: sleep iostall_ms before the op proceeds
};

/// FNV-1a hash of a path's base name (the component after the last '/').
/// Hashing only the base name keeps a seeded storage-fault matrix
/// replayable across differently-named temp directories.
std::uint64_t ioPathHash(const std::string& path);

/// Fallback heartbeat deadline while a kill/hang is scheduled with no
/// explicit deadline= token.
inline constexpr int kDefaultRankFaultDeadlineMs = 50;

/// One injector's complete state: the installed plan, its hot-path gate
/// atomics, the consumed-once phase-event flags and the stall budget.
/// Thread-safe: the plan is written under a mutex at quiescent points, the
/// hot-path queries are one relaxed atomic load each. A Domain also
/// carries an optional reliable-delivery override so a tenant can switch
/// pcu::arq on or off without touching the process-global setting.
class Domain {
 public:
  Domain() = default;
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Install a plan (enables framing; enables injection when it injects).
  void install(const FaultPlan& plan);
  /// Remove the plan: no framing, no injection, watchdog off.
  void clear() { install(FaultPlan{}); }
  /// The installed plan. Meaningful only while framingEnabled().
  [[nodiscard]] FaultPlan plan() const;

  /// True when fault injection is active under this domain.
  [[nodiscard]] bool enabled() const {
    return injecting_.load(std::memory_order_relaxed);
  }
  /// True when messages under this domain must be framed/verified:
  /// injection active, checksum-verify mode, or reliable delivery on
  /// (the ARQ layer rides on frame sequence numbers and CRCs).
  [[nodiscard]] bool framingEnabled() const;
  /// Effective reliable-delivery switch: this domain's override when set,
  /// else the process-global arq setting.
  [[nodiscard]] bool reliableEnabled() const;
  /// Tenant-scoped reliable override (-1 inherits the process setting).
  void setReliable(bool on) {
    reliable_override_.store(on ? 1 : 0, std::memory_order_relaxed);
  }
  void clearReliableOverride() {
    reliable_override_.store(-1, std::memory_order_relaxed);
  }
  [[nodiscard]] int reliableOverride() const {
    return reliable_override_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] int watchdogMs() const {
    return watchdog_ms_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool hasRankFault() const {
    return rank_fault_.load(std::memory_order_relaxed);
  }
  /// Heartbeat deadline in ms: the plan's explicit deadline_ms, else
  /// kDefaultRankFaultDeadlineMs while a rank fault is scheduled, else 0.
  [[nodiscard]] int deadlineMs() const {
    return deadline_ms_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool hasJoin() const {
    return join_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool hasPhaseEvent() const {
    return rank_fault_.load(std::memory_order_relaxed) ||
           join_.load(std::memory_order_relaxed);
  }

  /// Consume the scheduled kill for (rank, phase): true exactly once.
  bool fireKill(int rank, std::uint64_t phase);
  /// Consume the scheduled hang the same way.
  bool fireHang(int rank, std::uint64_t phase);
  /// Consume the scheduled join at boundary `phase`: the join count
  /// exactly once, 0 otherwise.
  int fireJoin(std::uint64_t phase);

  /// Deterministic per-message decision: pure in (plan seed, src, dst,
  /// tag, seq). kDeliver when injection is off.
  [[nodiscard]] Action decide(int src, int dst, int tag,
                              std::uint64_t seq) const;
  /// Sleep if `rank` has stall steps scheduled; consumes one step.
  void maybeStall(int rank);

  /// True when storage fault injection is active under this domain.
  [[nodiscard]] bool ioEnabled() const {
    return io_injecting_.load(std::memory_order_relaxed);
  }
  /// Deterministic per-I/O-op decision: pure in (plan seed, path hash,
  /// op, offset). kOk when storage injection is off. Read ops draw from
  /// {bitrot, short, stall}; write ops from {torn, short, enospc, stall}.
  [[nodiscard]] IoAction decideIo(IoOp op, std::uint64_t path_hash,
                                  std::uint64_t offset) const;
  /// Sleep per stalled I/O op, ms.
  [[nodiscard]] int ioStallMs() const {
    return iostall_ms_.load(std::memory_order_relaxed);
  }

  /// True when memory fault injection is scheduled under this domain.
  [[nodiscard]] bool memEnabled() const {
    return mem_injecting_.load(std::memory_order_relaxed);
  }
  /// Consume the scheduled memflip at integrity boundary `phase`: the
  /// burst exactly once (for the caller that reaches the matching
  /// boundary), a default MemFlip (bits == 0) otherwise.
  MemFlip fireMemFlip(std::uint64_t phase);

 private:
  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::vector<int> stall_budget_;  // per-rank remaining stall steps
  bool kill_fired_ = false;
  bool hang_fired_ = false;
  bool join_fired_ = false;
  bool memflip_fired_ = false;
  std::atomic<bool> injecting_{false};
  std::atomic<bool> io_injecting_{false};
  std::atomic<bool> mem_injecting_{false};
  std::atomic<int> iostall_ms_{1};
  std::atomic<bool> framing_{false};
  std::atomic<bool> rank_fault_{false};
  std::atomic<bool> join_{false};
  std::atomic<int> watchdog_ms_{0};
  std::atomic<int> deadline_ms_{0};
  std::atomic<int> reliable_override_{-1};
};

/// The process default domain. The first access latches PUMI_FAULTS into
/// it; setPlan()/clearPlan() on the ambient default override that.
std::shared_ptr<Domain> defaultDomain();

/// The calling thread's ambient domain: the innermost active DomainScope's
/// domain, else the default. Every free function below routes through it.
Domain& current();
/// Shared handle to the ambient domain (for attaching it to a pcu::Group).
std::shared_ptr<Domain> currentHandle();

/// RAII ambient-domain switch for the calling thread. A service layer
/// wraps each tenant job in one of these so every faults:: query made by
/// the layers underneath (dist::Network's driver-thread transport, the
/// arq reliable gate) resolves to the tenant's domain.
class DomainScope {
 public:
  explicit DomainScope(std::shared_ptr<Domain> domain);
  ~DomainScope();
  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  std::shared_ptr<Domain> keep_alive_;
  Domain* prev_;
  const void* prev_handle_ = nullptr;
};

/// Install a plan on the ambient domain.
void setPlan(const FaultPlan& plan);
/// Remove the ambient domain's plan.
void clearPlan();
/// The ambient domain's plan. Meaningful only while framingEnabled().
FaultPlan plan();

/// True when fault injection is active under the ambient domain. First
/// call latches PUMI_FAULTS from the environment (default domain only).
bool enabled();
/// True when messages must be framed/verified under the ambient domain.
bool framingEnabled();
/// Watchdog timeout for blocking receives; 0 when off.
int watchdogMs();

/// --- rank faults (kill/hang) --------------------------------------------

/// True while the ambient plan schedules a kill or hang (one relaxed load).
bool hasRankFault();
/// Heartbeat deadline in milliseconds: the plan's explicit deadline_ms,
/// else kDefaultRankFaultDeadlineMs while a rank fault is scheduled, else 0
/// (failure detector disarmed — the historical behaviour).
int deadlineMs();
/// Consume the scheduled kill for (rank, phase): returns true exactly once,
/// for the matching rank at the matching phase index. The caller then dies
/// (throws failure::RankKilled).
bool fireKill(int rank, std::uint64_t phase);
/// Consume the scheduled hang the same way. The caller then goes silent
/// until its group is revoked.
bool fireHang(int rank, std::uint64_t phase);

/// --- elastic joins (join=K@P) -------------------------------------------

/// True while the ambient plan schedules a join (one relaxed load).
bool hasJoin();
/// True while the plan schedules any phased event (kill, hang, or join):
/// the hardened phase-boundary counters advance only while this holds, so
/// the @PHASE index of every scheduled event is deterministic.
bool hasPhaseEvent();
/// Consume the scheduled join at boundary `phase`: returns the join count
/// exactly once — for the first caller that reaches the matching boundary —
/// and 0 otherwise. Join is rank-agnostic: any rank may observe it; the
/// caller records it as pending and the group admits the newcomers at the
/// next quiescent point (Comm::grow / dist::elastic).
int fireJoin(std::uint64_t phase);

/// Deterministic per-message decision under the ambient domain: pure in
/// (plan seed, src, dst, tag, seq). Returns kDeliver when injection is off.
Action decide(int src, int dst, int tag, std::uint64_t seq);

/// Sleep if `rank` has stall steps scheduled and budget remaining; consumes
/// one step. Called at phased-exchange entry.
void maybeStall(int rank);

/// --- storage faults (pario::File shim) ----------------------------------

/// True when the ambient plan injects storage faults (one relaxed load).
bool ioEnabled();
/// Deterministic per-I/O-op decision under the ambient domain: pure in
/// (plan seed, path hash, op, offset). kOk when storage injection is off.
IoAction decideIo(IoOp op, std::uint64_t path_hash, std::uint64_t offset);
/// The ambient plan's sleep per stalled I/O op, ms.
int ioStallMs();

/// --- memory faults (core::integrity hook) -------------------------------

/// True when the ambient plan schedules a memflip (one relaxed load).
bool memEnabled();
/// Consume the ambient plan's scheduled memflip at integrity boundary
/// `phase`: the burst exactly once, a default MemFlip (bits == 0) otherwise.
MemFlip fireMemFlip(std::uint64_t phase);
/// Deterministic flip-placement key, pure in (seed, rank, part, section
/// hash, flip index): the integrity armor reduces it modulo its candidate
/// spaces (section choice, bit offset) so a seeded memflip matrix replays
/// bit-identically.
std::uint64_t memFlipKey(std::uint64_t seed, int rank, int part,
                         std::uint64_t section_hash, int flip_index);

/// The ambient domain's reliable override (-1: inherit the process arq
/// setting). Consulted by arq::enabled() so a DomainScope tenant-scopes
/// reliability too.
int ambientReliableOverride();

/// --- framing ------------------------------------------------------------

inline constexpr std::uint32_t kFrameMagic = 0x50435546u;  // "PCUF"
/// Header layout: magic(u32) crc32(u32) seq(u64); crc covers seq + payload.
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// CRC32 (IEEE 802.3, reflected) of a byte span. Forwarding wrapper for
/// common::crc32 (common/crc32.hpp), kept so the framing layer's historical
/// spelling still works; new code should call common::crc32 directly.
inline std::uint32_t crc32(const std::byte* data, std::size_t n) {
  return common::crc32(data, n);
}

/// Wrap a payload in a frame carrying `seq`.
std::vector<std::byte> frame(std::uint64_t seq, std::vector<std::byte> payload);

/// Deterministically flip one byte in the framed message's checked region
/// (so verification must catch it).
void corruptFrame(std::vector<std::byte>& framed, int src, int dst, int tag,
                  std::uint64_t seq);

/// Verify a frame and strip the header. Throws pcu::Error(kCorruptPayload)
/// naming (self, src, tag) on magic/CRC mismatch. Returns the payload and
/// writes the channel sequence number to `seq_out`.
std::vector<std::byte> unframe(std::vector<std::byte> framed,
                               std::uint64_t& seq_out, int self, int src,
                               int tag);

/// --- loss beacons (reliable mode) ---------------------------------------
/// When reliable delivery is on, a dropped frame is replaced by a tiny
/// beacon carrying the lost sequence number, so the receiver pulls the
/// retransmission from the sender's store immediately instead of waiting
/// out the RTO timer. Beacons use a distinct magic word; they only exist
/// on framed channels, so they can never be mistaken for payload.

inline constexpr std::uint32_t kBeaconMagic = 0x5043554Cu;  // "PCUL"
inline constexpr std::size_t kBeaconBytes = 12;  // magic(u32) + seq(u64)

/// Build a loss beacon for channel sequence `seq`.
std::vector<std::byte> lossBeacon(std::uint64_t seq);
/// True when `bytes` is a loss beacon.
bool isLossBeacon(const std::vector<std::byte>& bytes);
/// The lost sequence number a beacon names (call only when isLossBeacon).
std::uint64_t beaconSeq(const std::vector<std::byte>& bytes);

/// --- collective error agreement ----------------------------------------

/// Collective: every rank passes its local error (or nullptr). If any rank
/// reported one, all ranks throw together — the reporting rank rethrows its
/// own error, the others throw kRemoteAbort naming the lowest failing rank.
/// Runs over the comm's internal (never fault-injected) collectives, so it
/// always terminates. Returns normally iff no rank had an error.
void agreeOnError(Comm& comm, const Error* local);

}  // namespace pcu::faults

#endif  // PUMI_PCU_FAULTS_HPP
