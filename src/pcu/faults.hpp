#ifndef PUMI_PCU_FAULTS_HPP
#define PUMI_PCU_FAULTS_HPP

/// \file faults.hpp
/// \brief Deterministic fault injection and message framing/verification.
///
/// The paper's algorithms assume a perfectly reliable transport. This
/// subsystem makes that assumption testable: under an explicit FaultPlan
/// (programmatic via setPlan(), or from the PUMI_FAULTS environment
/// variable) the send paths of pcu::Comm and dist::Network deterministically
/// corrupt payload bytes, drop or duplicate messages, delay/reorder
/// deliveries, and stall a rank — every decision is a pure function of
/// (seed, src, dst, tag, per-channel sequence number), so a seeded chaos
/// run replays bit-identically.
///
/// Hardening rides on the same switch: whenever a plan is active (or
/// checksum-verify mode is on) every user-tag message is framed with a
/// header carrying a magic word, a per-(src,dst,tag)-channel sequence
/// number, and a CRC32 of the payload. Receivers verify the frame and
/// surface corruption, duplication, loss and reordering as structured
/// pcu::Error values instead of undefined behaviour. With no plan active
/// the framing code is never entered: the hot path pays one relaxed atomic
/// load.
///
/// PUMI_FAULTS syntax (comma-separated key=value):
///   seed=42            deterministic stream seed
///   corrupt=0.01       per-message probability of payload corruption
///   drop=0.01          per-message probability of dropping
///   dup=0.01           per-message probability of duplication
///   delay=0.02         per-message probability of delayed (reordered) delivery
///   stall=R:N          rank R sleeps at its next N phased-exchange steps
///   stallms=M          stall sleep per step, milliseconds (default 2)
///   kill=R@P           rank R dies at its P-th hardened phase boundary
///   hang=R@P           rank R goes silent (no heartbeats) at boundary P
///   join=K@P           K new ranks ask to join at phase boundary P (an
///                      elastic scale-out event, not a fault: the live
///                      group admits them via Comm::grow / dist elastic)
///   deadline=MS        heartbeat deadline before a silent rank is declared
///                      dead (default 50 while a kill/hang is scheduled)
///   watchdog=MS        blocking-receive watchdog timeout, ms (0 = off)
///   checksum=1         frame+verify only, no injection ("checksum-verify")
///
/// Plans must only be installed/cleared at quiescent points (no concurrent
/// sends/receives) — typically around a pcu::run() or a distributed mesh
/// operation.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pcu/error.hpp"

namespace pcu {
class Comm;
}

namespace pcu::faults {

/// A scheduled whole-rank fault: rank `rank` dies (kill) or goes silent
/// (hang) at its `phase`-th hardened phase boundary — phased-exchange entry
/// under pcu::run, a deliverAll boundary under dist::Network. Fires at most
/// once per installed plan.
struct RankFault {
  int rank = -1;
  int phase = -1;
  [[nodiscard]] bool scheduled() const { return rank >= 0 && phase >= 0; }
};

/// A scheduled elastic join: `count` new ranks knock at hardened phase
/// boundary `phase`. Not a fault — nothing breaks — but it shares the
/// fault plan's strict parsing and deterministic phase indexing so chaos
/// scenarios can scale out mid-storm. Fires at most once per installed
/// plan.
struct RankJoin {
  int count = 0;
  int phase = -1;
  [[nodiscard]] bool scheduled() const { return count > 0 && phase >= 0; }
};

/// A deterministic fault schedule. Probabilities are per message in [0,1].
struct FaultPlan {
  std::uint64_t seed = 1;
  double corrupt = 0.0;
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  int stall_rank = -1;   ///< rank to stall (-1: none)
  int stall_steps = 0;   ///< phased-exchange steps the rank stalls for
  int stall_ms = 2;      ///< sleep per stalled step
  RankFault kill;        ///< whole-rank death (failure detection kicks in)
  RankFault hang;        ///< whole-rank silence (detected like a death)
  RankJoin join;         ///< elastic scale-out: K new ranks at boundary P
  int deadline_ms = 0;   ///< heartbeat deadline; 0 = default when kill/hang
  int watchdog_ms = 0;   ///< blocking-recv timeout; 0 disables the watchdog
  bool checksum_only = false;  ///< frame + verify without injecting faults

  [[nodiscard]] bool injects() const {
    return corrupt > 0 || drop > 0 || duplicate > 0 || delay > 0 ||
           stall_steps > 0 || kill.scheduled() || hang.scheduled();
  }
};

/// Parse a PUMI_FAULTS-style spec. Strict: every value must consume its
/// whole token (no trailing characters, no signs on unsigned fields, no
/// out-of-range probabilities); malformed input throws
/// pcu::Error(kValidation) naming the bad token.
FaultPlan parsePlan(const std::string& spec);

/// Install a plan (enables framing; enables injection when plan.injects()).
void setPlan(const FaultPlan& plan);
/// Remove any active plan: no framing, no injection, watchdog off.
void clearPlan();
/// The active plan. Meaningful only while framingEnabled().
FaultPlan plan();

/// True when fault injection is active (a plan with injecting knobs is
/// installed). First call latches PUMI_FAULTS from the environment.
bool enabled();
/// True when messages must be framed/verified: injection active,
/// checksum-verify mode on, or reliable delivery (pcu::arq) enabled —
/// the ARQ layer rides on frame sequence numbers and CRCs.
bool framingEnabled();
/// Watchdog timeout for blocking receives; 0 when off.
int watchdogMs();

/// --- rank faults (kill/hang) --------------------------------------------

/// Fallback heartbeat deadline while a kill/hang is scheduled with no
/// explicit deadline= token.
inline constexpr int kDefaultRankFaultDeadlineMs = 50;

/// True while the active plan schedules a kill or hang (one relaxed load).
bool hasRankFault();
/// Heartbeat deadline in milliseconds: the plan's explicit deadline_ms,
/// else kDefaultRankFaultDeadlineMs while a rank fault is scheduled, else 0
/// (failure detector disarmed — the historical behaviour).
int deadlineMs();
/// Consume the scheduled kill for (rank, phase): returns true exactly once,
/// for the matching rank at the matching phase index. The caller then dies
/// (throws failure::RankKilled).
bool fireKill(int rank, std::uint64_t phase);
/// Consume the scheduled hang the same way. The caller then goes silent
/// until its group is revoked.
bool fireHang(int rank, std::uint64_t phase);

/// --- elastic joins (join=K@P) -------------------------------------------

/// True while the active plan schedules a join (one relaxed load).
bool hasJoin();
/// True while the plan schedules any phased event (kill, hang, or join):
/// the hardened phase-boundary counters advance only while this holds, so
/// the @PHASE index of every scheduled event is deterministic.
bool hasPhaseEvent();
/// Consume the scheduled join at boundary `phase`: returns the join count
/// exactly once — for the first caller that reaches the matching boundary —
/// and 0 otherwise. Join is rank-agnostic: any rank may observe it; the
/// caller records it as pending and the group admits the newcomers at the
/// next quiescent point (Comm::grow / dist::elastic).
int fireJoin(std::uint64_t phase);

/// What the injector decides for one message.
enum class Action : std::uint8_t {
  kDeliver,
  kCorrupt,
  kDrop,
  kDuplicate,
  kDelay,
};

/// Deterministic per-message decision: pure in (plan seed, src, dst, tag,
/// seq). Returns kDeliver when injection is off.
Action decide(int src, int dst, int tag, std::uint64_t seq);

/// Sleep if `rank` has stall steps scheduled and budget remaining; consumes
/// one step. Called at phased-exchange entry.
void maybeStall(int rank);

/// --- framing ------------------------------------------------------------

inline constexpr std::uint32_t kFrameMagic = 0x50435546u;  // "PCUF"
/// Header layout: magic(u32) crc32(u32) seq(u64); crc covers seq + payload.
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// CRC32 (IEEE 802.3, reflected) of a byte span.
std::uint32_t crc32(const std::byte* data, std::size_t n);

/// Wrap a payload in a frame carrying `seq`.
std::vector<std::byte> frame(std::uint64_t seq, std::vector<std::byte> payload);

/// Deterministically flip one byte in the framed message's checked region
/// (so verification must catch it).
void corruptFrame(std::vector<std::byte>& framed, int src, int dst, int tag,
                  std::uint64_t seq);

/// Verify a frame and strip the header. Throws pcu::Error(kCorruptPayload)
/// naming (self, src, tag) on magic/CRC mismatch. Returns the payload and
/// writes the channel sequence number to `seq_out`.
std::vector<std::byte> unframe(std::vector<std::byte> framed,
                               std::uint64_t& seq_out, int self, int src,
                               int tag);

/// --- loss beacons (reliable mode) ---------------------------------------
/// When reliable delivery is on, a dropped frame is replaced by a tiny
/// beacon carrying the lost sequence number, so the receiver pulls the
/// retransmission from the sender's store immediately instead of waiting
/// out the RTO timer. Beacons use a distinct magic word; they only exist
/// on framed channels, so they can never be mistaken for payload.

inline constexpr std::uint32_t kBeaconMagic = 0x5043554Cu;  // "PCUL"
inline constexpr std::size_t kBeaconBytes = 12;  // magic(u32) + seq(u64)

/// Build a loss beacon for channel sequence `seq`.
std::vector<std::byte> lossBeacon(std::uint64_t seq);
/// True when `bytes` is a loss beacon.
bool isLossBeacon(const std::vector<std::byte>& bytes);
/// The lost sequence number a beacon names (call only when isLossBeacon).
std::uint64_t beaconSeq(const std::vector<std::byte>& bytes);

/// --- collective error agreement ----------------------------------------

/// Collective: every rank passes its local error (or nullptr). If any rank
/// reported one, all ranks throw together — the reporting rank rethrows its
/// own error, the others throw kRemoteAbort naming the lowest failing rank.
/// Runs over the comm's internal (never fault-injected) collectives, so it
/// always terminates. Returns normally iff no rank had an error.
void agreeOnError(Comm& comm, const Error* local);

}  // namespace pcu::faults

#endif  // PUMI_PCU_FAULTS_HPP
