#include "pcu/faults.hpp"

#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <tuple>

#include "pcu/arq.hpp"
#include "pcu/comm.hpp"
#include "pcu/envspec.hpp"

namespace pcu::faults {

namespace {

/// splitmix64 finalizer: decorrelates the packed decision key.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t decisionKey(std::uint64_t seed, int src, int dst, int tag,
                          std::uint64_t seq) {
  std::uint64_t h = mix(seed);
  h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
                << 32)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  return mix(h ^ seq);
}

double unitUniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

void put32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// The calling thread's ambient domain; null means the default domain.
/// tls_handle points at the innermost DomainScope's owning shared_ptr so
/// currentHandle() can share ownership without a lifetime hack.
thread_local Domain* tls_domain = nullptr;
thread_local const std::shared_ptr<Domain>* tls_handle = nullptr;

/// Latch PUMI_FAULTS into the default domain once, before its first query;
/// setPlan()/clearPlan() override it.
void envLatch(Domain& d) {
  static Domain* latched = [&] {
    const char* spec = std::getenv("PUMI_FAULTS");
    if (spec != nullptr && *spec != '\0') d.install(parsePlan(spec));
    return &d;
  }();
  (void)latched;
}

}  // namespace

void Domain::install(const FaultPlan& p) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = p;
  stall_budget_.clear();
  kill_fired_ = false;
  hang_fired_ = false;
  join_fired_ = false;
  if (p.stall_rank >= 0 && p.stall_steps > 0) {
    stall_budget_.assign(static_cast<std::size_t>(p.stall_rank) + 1, 0);
    stall_budget_[static_cast<std::size_t>(p.stall_rank)] = p.stall_steps;
  }
  memflip_fired_ = false;
  const bool rank_fault = p.kill.scheduled() || p.hang.scheduled();
  injecting_.store(p.injects(), std::memory_order_relaxed);
  // Storage faults gate only the pario::File shim; they deliberately do
  // not arm message framing or transactional mode. Memory faults likewise
  // gate only core::integrity's injection hook.
  io_injecting_.store(p.ioInjects(), std::memory_order_relaxed);
  mem_injecting_.store(p.memInjects(), std::memory_order_relaxed);
  iostall_ms_.store(p.iostall_ms, std::memory_order_relaxed);
  // A scheduled join is not a fault, but it needs the hardened phase
  // boundaries (which only exist on the framed path) so its @PHASE index is
  // deterministic — frame like checksum-verify mode does.
  framing_.store(p.injects() || p.checksum_only || p.join.scheduled(),
                 std::memory_order_relaxed);
  watchdog_ms_.store(p.watchdog_ms, std::memory_order_relaxed);
  rank_fault_.store(rank_fault, std::memory_order_relaxed);
  join_.store(p.join.scheduled(), std::memory_order_relaxed);
  deadline_ms_.store(p.deadline_ms > 0
                         ? p.deadline_ms
                         : (rank_fault ? kDefaultRankFaultDeadlineMs : 0),
                     std::memory_order_relaxed);
}

FaultPlan Domain::plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_;
}

bool Domain::framingEnabled() const {
  // Reliable delivery needs the frame seq/CRC machinery even with no fault
  // plan installed (sequence-based dedup and acknowledgement ride on it).
  return framing_.load(std::memory_order_relaxed) || reliableEnabled();
}

bool Domain::reliableEnabled() const {
  const int ov = reliable_override_.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  return arq::processEnabled();
}

bool Domain::fireKill(int rank, std::uint64_t phase) {
  if (!hasRankFault()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (kill_fired_ || !plan_.kill.scheduled()) return false;
  if (rank != plan_.kill.rank ||
      phase != static_cast<std::uint64_t>(plan_.kill.phase))
    return false;
  kill_fired_ = true;
  return true;
}

bool Domain::fireHang(int rank, std::uint64_t phase) {
  if (!hasRankFault()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (hang_fired_ || !plan_.hang.scheduled()) return false;
  if (rank != plan_.hang.rank ||
      phase != static_cast<std::uint64_t>(plan_.hang.phase))
    return false;
  hang_fired_ = true;
  return true;
}

MemFlip Domain::fireMemFlip(std::uint64_t phase) {
  if (!memEnabled()) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  if (memflip_fired_ || !plan_.memflip.scheduled()) return {};
  if (phase != static_cast<std::uint64_t>(plan_.memflip.phase)) return {};
  memflip_fired_ = true;
  return plan_.memflip;
}

int Domain::fireJoin(std::uint64_t phase) {
  if (!hasJoin()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (join_fired_ || !plan_.join.scheduled()) return 0;
  if (phase != static_cast<std::uint64_t>(plan_.join.phase)) return 0;
  join_fired_ = true;
  return plan_.join.count;
}

Action Domain::decide(int src, int dst, int tag, std::uint64_t seq) const {
  if (!enabled()) return Action::kDeliver;
  FaultPlan p;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    p = plan_;
  }
  const double u = unitUniform(decisionKey(p.seed, src, dst, tag, seq));
  // Stack the probability bands: [0,corrupt) corrupt, [corrupt,+drop) drop,
  // then duplicate, then delay, else deliver.
  double edge = p.corrupt;
  if (u < edge) return Action::kCorrupt;
  edge += p.drop;
  if (u < edge) return Action::kDrop;
  edge += p.duplicate;
  if (u < edge) return Action::kDuplicate;
  edge += p.delay;
  if (u < edge) return Action::kDelay;
  return Action::kDeliver;
}

IoAction Domain::decideIo(IoOp op, std::uint64_t path_hash,
                          std::uint64_t offset) const {
  if (!ioEnabled()) return IoAction::kOk;
  FaultPlan p;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    p = plan_;
  }
  // Pure in (seed, path hash, op, offset): same band-stacking discipline as
  // the per-message decide(), over a separately-salted key stream so a plan
  // mixing message and storage probabilities draws independent decisions.
  std::uint64_t h = mix(p.seed ^ 0x50494F4641554C54ull);  // "PIOFAULT"
  h = mix(h ^ path_hash);
  h = mix(h ^ (static_cast<std::uint64_t>(op) + 1));
  const double u = unitUniform(mix(h ^ offset));
  if (op == IoOp::kWrite) {
    double edge = p.iotorn;
    if (u < edge) return IoAction::kTorn;
    edge += p.ioshort;
    if (u < edge) return IoAction::kShort;
    edge += p.ioenospc;
    if (u < edge) return IoAction::kEnospc;
    edge += p.iostall;
    if (u < edge) return IoAction::kStall;
    return IoAction::kOk;
  }
  double edge = p.iobitrot;
  if (u < edge) return IoAction::kBitrot;
  edge += p.ioshort;
  if (u < edge) return IoAction::kShort;
  edge += p.iostall;
  if (u < edge) return IoAction::kStall;
  return IoAction::kOk;
}

std::uint64_t ioPathHash(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (std::size_t i = start; i < path.size(); ++i) {
    h ^= static_cast<std::uint8_t>(path[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

void Domain::maybeStall(int rank) {
  if (!enabled() || rank < 0) return;
  int sleep_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<std::size_t>(rank) < stall_budget_.size() &&
        stall_budget_[static_cast<std::size_t>(rank)] > 0) {
      --stall_budget_[static_cast<std::size_t>(rank)];
      sleep_ms = plan_.stall_ms;
    }
  }
  if (sleep_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

std::shared_ptr<Domain> defaultDomain() {
  static std::shared_ptr<Domain> d = std::make_shared<Domain>();
  envLatch(*d);
  return d;
}

Domain& current() {
  if (tls_domain != nullptr) return *tls_domain;
  return *defaultDomain();
}

std::shared_ptr<Domain> currentHandle() {
  if (tls_handle != nullptr) return *tls_handle;
  return defaultDomain();
}

DomainScope::DomainScope(std::shared_ptr<Domain> domain)
    : keep_alive_(std::move(domain)), prev_(tls_domain) {
  prev_handle_ = tls_handle;
  tls_domain = keep_alive_.get();
  tls_handle = &keep_alive_;
}

DomainScope::~DomainScope() {
  tls_domain = prev_;
  tls_handle = static_cast<const std::shared_ptr<Domain>*>(prev_handle_);
}

FaultPlan parsePlan(const std::string& spec) {
  // Strict token-by-token parsing (pcu/envspec.hpp): each value must
  // consume its whole token, unsigned fields reject signs, probabilities
  // live in [0,1]; every rejection is a kValidation error naming the bad
  // token. The previous stoull/stod parsing silently accepted trailing
  // garbage ("drop=0.5xyz"), negative stallms, and wrapping seeds.
  const std::string env = "PUMI_FAULTS";
  FaultPlan p;
  // Repeated keys are a spec error, not a silent overwrite: a plan whose
  // later token replaced an earlier one would replay differently than it
  // reads. Remember each key's first token so the rejection names both.
  std::map<std::string, std::string> seen;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      envspec::fail(env, "missing '=' in \"" + item + "\"");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (const auto it = seen.find(key); it != seen.end())
      envspec::fail(env, "duplicate key \"" + key + "\": \"" + it->second +
                             "\" and \"" + item + "\"");
    seen.emplace(key, item);
    if (key == "seed") {
      p.seed = envspec::parseU64(env, key, val);
    } else if (key == "corrupt") {
      p.corrupt = envspec::parseProb(env, key, val);
    } else if (key == "drop") {
      p.drop = envspec::parseProb(env, key, val);
    } else if (key == "dup") {
      p.duplicate = envspec::parseProb(env, key, val);
    } else if (key == "delay") {
      p.delay = envspec::parseProb(env, key, val);
    } else if (key == "stall") {
      const std::size_t colon = val.find(':');
      if (colon == std::string::npos)
        envspec::fail(env, "stall wants RANK:STEPS, got \"" + val + "\"");
      p.stall_rank = envspec::parseInt(env, "stall rank", val.substr(0, colon),
                                       0, 1 << 24);
      p.stall_steps = envspec::parseInt(env, "stall steps",
                                        val.substr(colon + 1), 0, 1 << 30);
    } else if (key == "stallms") {
      p.stall_ms = envspec::parseInt(env, key, val, 0, 1 << 30);
    } else if (key == "kill") {
      std::tie(p.kill.rank, p.kill.phase) =
          envspec::parseRankAtPhase(env, key, val);
    } else if (key == "hang") {
      std::tie(p.hang.rank, p.hang.phase) =
          envspec::parseRankAtPhase(env, key, val);
    } else if (key == "join") {
      // COUNT@PHASE, strict like kill/hang but the first half is a joiner
      // count and must be at least 1 (a zero-rank join is a spec error,
      // not a no-op).
      const std::size_t at = val.find('@');
      if (at == std::string::npos)
        envspec::badValue(env, key, val, "COUNT@PHASE");
      p.join.count =
          envspec::parseInt(env, "join count", val.substr(0, at), 1, 1 << 16);
      p.join.phase =
          envspec::parseInt(env, "join phase", val.substr(at + 1), 0, 1 << 30);
    } else if (key == "deadline") {
      p.deadline_ms = envspec::parseInt(env, key, val, 0, 1 << 30);
    } else if (key == "watchdog") {
      p.watchdog_ms = envspec::parseInt(env, key, val, 0, 1 << 30);
    } else if (key == "checksum") {
      p.checksum_only = envspec::parseBool(env, key, val);
    } else if (key == "iobitrot") {
      p.iobitrot = envspec::parseProb(env, key, val);
    } else if (key == "iotorn") {
      p.iotorn = envspec::parseProb(env, key, val);
    } else if (key == "ioshort") {
      p.ioshort = envspec::parseProb(env, key, val);
    } else if (key == "ioenospc") {
      p.ioenospc = envspec::parseProb(env, key, val);
    } else if (key == "iostall") {
      p.iostall = envspec::parseProb(env, key, val);
    } else if (key == "iostallms") {
      p.iostall_ms = envspec::parseInt(env, key, val, 0, 1 << 30);
    } else if (key == "memflip") {
      // NBITS@PHASE[:target], strict: at least one bit (a zero-bit burst is
      // a spec error, not a no-op), phase >= 0, and the optional target must
      // name a known section family exactly.
      const std::size_t at = val.find('@');
      if (at == std::string::npos)
        envspec::badValue(env, key, val, "NBITS@PHASE[:target]");
      p.memflip.bits = envspec::parseInt(env, "memflip bits",
                                         val.substr(0, at), 1, 1 << 20);
      std::string rest = val.substr(at + 1);
      const std::size_t colon = rest.find(':');
      if (colon != std::string::npos) {
        const std::string target = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
        if (target == "pool") {
          p.memflip.target = MemTarget::kPool;
        } else if (target == "tag") {
          p.memflip.target = MemTarget::kTag;
        } else if (target == "remotes") {
          p.memflip.target = MemTarget::kRemotes;
        } else if (target == "csr") {
          p.memflip.target = MemTarget::kCsr;
        } else {
          envspec::fail(env, "memflip target \"" + target +
                                 "\" is not one of pool|tag|remotes|csr");
        }
      }
      p.memflip.phase = envspec::parseInt(env, "memflip phase", rest, 0,
                                          1 << 30);
    } else {
      envspec::fail(env, "unknown key \"" + key + "\" in \"" + item + "\"");
    }
  }
  return p;
}

void setPlan(const FaultPlan& plan) { current().install(plan); }

void clearPlan() { current().clear(); }

FaultPlan plan() { return current().plan(); }

bool enabled() { return current().enabled(); }

bool framingEnabled() { return current().framingEnabled(); }

int watchdogMs() { return current().watchdogMs(); }

bool hasRankFault() { return current().hasRankFault(); }

int deadlineMs() { return current().deadlineMs(); }

bool fireKill(int rank, std::uint64_t phase) {
  return current().fireKill(rank, phase);
}

bool fireHang(int rank, std::uint64_t phase) {
  return current().fireHang(rank, phase);
}

bool hasJoin() { return current().hasJoin(); }

bool hasPhaseEvent() { return current().hasPhaseEvent(); }

int fireJoin(std::uint64_t phase) { return current().fireJoin(phase); }

Action decide(int src, int dst, int tag, std::uint64_t seq) {
  return current().decide(src, dst, tag, seq);
}

void maybeStall(int rank) { current().maybeStall(rank); }

bool ioEnabled() { return current().ioEnabled(); }

IoAction decideIo(IoOp op, std::uint64_t path_hash, std::uint64_t offset) {
  return current().decideIo(op, path_hash, offset);
}

int ioStallMs() { return current().ioStallMs(); }

const char* memTargetName(MemTarget t) {
  switch (t) {
    case MemTarget::kAny: return "any";
    case MemTarget::kPool: return "pool";
    case MemTarget::kTag: return "tag";
    case MemTarget::kRemotes: return "remotes";
    case MemTarget::kCsr: return "csr";
  }
  return "unknown";
}

bool memEnabled() { return current().memEnabled(); }

MemFlip fireMemFlip(std::uint64_t phase) {
  return current().fireMemFlip(phase);
}

std::uint64_t memFlipKey(std::uint64_t seed, int rank, int part,
                         std::uint64_t section_hash, int flip_index) {
  // Separately-salted key stream (like decideIo's) so a plan mixing
  // message, storage, and memory faults draws independent decisions.
  std::uint64_t h = mix(seed ^ 0x504D454D464C4950ull);  // "PMEMFLIP"
  h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(part))
                << 32)));
  h = mix(h ^ section_hash);
  return mix(h ^ static_cast<std::uint64_t>(flip_index));
}

int ambientReliableOverride() { return current().reliableOverride(); }

std::vector<std::byte> frame(std::uint64_t seq,
                             std::vector<std::byte> payload) {
  std::vector<std::byte> out(kFrameHeaderBytes + payload.size());
  put64(out.data() + 8, seq);
  if (!payload.empty())
    std::memcpy(out.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  // CRC covers seq + payload, i.e. everything after the crc field.
  put32(out.data(), kFrameMagic);
  put32(out.data() + 4, crc32(out.data() + 8, out.size() - 8));
  return out;
}

void corruptFrame(std::vector<std::byte>& framed, int src, int dst, int tag,
                  std::uint64_t seq) {
  if (framed.size() <= 8) return;
  // Flip one deterministic byte in the CRC-checked region (seq + payload),
  // so the receiver's verification is guaranteed to catch it.
  const std::uint64_t h = decisionKey(0xC044557Bull, src, dst, tag, seq);
  const std::size_t idx = 8 + static_cast<std::size_t>(h % (framed.size() - 8));
  framed[idx] ^= std::byte{0x5A};
}

std::vector<std::byte> unframe(std::vector<std::byte> framed,
                               std::uint64_t& seq_out, int self, int src,
                               int tag) {
  if (framed.size() < kFrameHeaderBytes || get32(framed.data()) != kFrameMagic)
    throw Error(ErrorCode::kCorruptPayload, self, src, tag,
                "bad frame magic/size (" + std::to_string(framed.size()) +
                    " bytes)");
  const std::uint32_t want = get32(framed.data() + 4);
  const std::uint32_t got = crc32(framed.data() + 8, framed.size() - 8);
  if (want != got)
    throw Error(ErrorCode::kCorruptPayload, self, src, tag,
                "payload CRC mismatch");
  seq_out = get64(framed.data() + 8);
  framed.erase(framed.begin(),
               framed.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes));
  return framed;
}

std::vector<std::byte> lossBeacon(std::uint64_t seq) {
  std::vector<std::byte> out(kBeaconBytes);
  put32(out.data(), kBeaconMagic);
  put64(out.data() + 4, seq);
  return out;
}

bool isLossBeacon(const std::vector<std::byte>& bytes) {
  return bytes.size() == kBeaconBytes && get32(bytes.data()) == kBeaconMagic;
}

std::uint64_t beaconSeq(const std::vector<std::byte>& bytes) {
  return get64(bytes.data() + 4);
}

void agreeOnError(Comm& comm, const Error* local) {
  // Encode (has-error ? rank : INT_MAX, code): the allreduce-min picks the
  // lowest failing rank deterministically.
  const long self_key =
      local != nullptr
          ? (static_cast<long>(comm.rank()) << 8) |
                static_cast<long>(static_cast<std::uint8_t>(local->code()))
          : (static_cast<long>(comm.size()) << 8);
  const long min_key = comm.allreduceMin<long>(self_key);
  const int fail_rank = static_cast<int>(min_key >> 8);
  if (fail_rank >= comm.size()) return;  // nobody failed
  if (local != nullptr) throw *local;
  const auto code = static_cast<ErrorCode>(min_key & 0xFF);
  throw Error(ErrorCode::kRemoteAbort, comm.rank(),
              std::string("collective abort: rank ") +
                  std::to_string(fail_rank) + " reported " +
                  errorCodeName(code));
}

}  // namespace pcu::faults
