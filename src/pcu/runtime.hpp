#ifndef PUMI_PCU_RUNTIME_HPP
#define PUMI_PCU_RUNTIME_HPP

/// \file runtime.hpp
/// \brief SPMD launcher: run a function on N thread-backed ranks.
///
/// pcu::run(n, fn) is the reproduction's `mpirun`: it creates a Group of n
/// ranks, launches one thread per rank, and calls fn(Comm&) on each. The
/// call returns when every rank finishes; the first exception thrown by any
/// rank is re-thrown to the caller.

#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pcu/comm.hpp"
#include "pcu/machine.hpp"
#include "pcu/trace.hpp"

namespace pcu {

/// Run fn(Comm&) on `nranks` ranks over the given machine topology.
template <typename Fn>
void run(int nranks, const Machine& machine, Fn&& fn) {
  auto group = std::make_shared<Group>(nranks, machine);
  std::vector<std::thread> threads;
  threads.reserve(nranks);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      trace::setThreadRank(r);
      try {
        Comm comm(group, r);
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Run with the default machine (all ranks on one shared-memory node).
template <typename Fn>
void run(int nranks, Fn&& fn) {
  run(nranks, Machine::singleNode(nranks), std::forward<Fn>(fn));
}

/// Launch the newcomer ranks of a freshly grown comm (see Comm::grow):
/// ranks [grown.size()-k, grown.size()) each get a thread running fn(Comm&).
/// Call from exactly one pre-existing rank, after every live rank has its
/// grown comm; join the returned threads before tearing the group down.
/// Exceptions thrown by newcomers are captured into `error` (first wins)
/// rather than rethrown, since the spawning rank is usually deep in its own
/// work when a newcomer dies.
template <typename Fn>
std::vector<std::thread> spawnJoined(Comm& grown, int k, Fn fn,
                                     std::exception_ptr* error = nullptr) {
  auto group = grown.groupHandle();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(k));
  auto error_mutex = std::make_shared<std::mutex>();
  for (int r = grown.size() - k; r < grown.size(); ++r) {
    threads.emplace_back([group, r, fn, error, error_mutex] {
      trace::setThreadRank(r);
      try {
        Comm comm(group, r);
        fn(comm);
      } catch (...) {
        if (error != nullptr) {
          std::lock_guard<std::mutex> lock(*error_mutex);
          if (!*error) *error = std::current_exception();
        }
      }
    });
  }
  return threads;
}

}  // namespace pcu

#endif  // PUMI_PCU_RUNTIME_HPP
