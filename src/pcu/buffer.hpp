#ifndef PUMI_PCU_BUFFER_HPP
#define PUMI_PCU_BUFFER_HPP

/// \file buffer.hpp
/// \brief Byte-oriented serialization buffers used by all pcu messaging.
///
/// OutBuffer packs trivially-copyable values, strings and vectors into a
/// contiguous byte stream; InBuffer unpacks them in the same order. These are
/// the only (de)serialization primitives in the library: every distributed
/// operation (migration, ghosting, ParMA diffusion) marshals through them.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace pcu {

/// A growable byte buffer with typed append ("pack") operations.
class OutBuffer {
 public:
  OutBuffer() = default;

  /// Append one trivially-copyable value.
  template <typename T>
  void pack(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pack requires a trivially copyable type");
    const auto* src = reinterpret_cast<const std::byte*>(&value);
    bytes_.insert(bytes_.end(), src, src + sizeof(T));
  }

  /// Append a length-prefixed string.
  void packString(const std::string& s) {
    pack<std::uint64_t>(s.size());
    const auto* src = reinterpret_cast<const std::byte*>(s.data());
    bytes_.insert(bytes_.end(), src, src + s.size());
  }

  /// Append a length-prefixed vector of trivially-copyable elements.
  template <typename T>
  void packVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "packVector requires trivially copyable elements");
    pack<std::uint64_t>(v.size());
    const auto* src = reinterpret_cast<const std::byte*>(v.data());
    bytes_.insert(bytes_.end(), src, src + v.size() * sizeof(T));
  }

  /// Append raw bytes (no length prefix).
  void packBytes(const void* data, std::size_t n) {
    const auto* src = static_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), src, src + n);
  }

  /// Pre-size the underlying storage (e.g. when the total coalesced
  /// segment size is known up front).
  void reserve(std::size_t n) { bytes_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }
  [[nodiscard]] const std::byte* data() const { return bytes_.data(); }

  /// Surrender the underlying storage.
  std::vector<std::byte> take() && { return std::move(bytes_); }
  [[nodiscard]] const std::vector<std::byte>& storage() const { return bytes_; }

  void clear() { bytes_.clear(); }

 private:
  std::vector<std::byte> bytes_;
};

/// A read cursor over a byte buffer; unpack order must mirror pack order.
class InBuffer {
 public:
  InBuffer() = default;
  explicit InBuffer(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}

  template <typename T>
  T unpack() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "unpack requires a trivially copyable type");
    assert(pos_ + sizeof(T) <= bytes_.size() && "unpack past end of buffer");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string unpackString() {
    const auto n = unpack<std::uint64_t>();
    assert(pos_ + n <= bytes_.size() && "unpackString past end of buffer");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> unpackVector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "unpackVector requires trivially copyable elements");
    const auto n = unpack<std::uint64_t>();
    assert(pos_ + n * sizeof(T) <= bytes_.size() &&
           "unpackVector past end of buffer");
    std::vector<T> v(n);
    std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  /// Consume `n` raw bytes (no length prefix) into a fresh buffer. Used to
  /// split a coalesced segment back into its logical sub-messages.
  std::vector<std::byte> unpackRaw(std::size_t n) {
    assert(pos_ + n <= bytes_.size() && "unpackRaw past end of buffer");
    std::vector<std::byte> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               bytes_.begin() +
                                   static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace pcu

#endif  // PUMI_PCU_BUFFER_HPP
