#ifndef PUMI_PCU_ENVSPEC_HPP
#define PUMI_PCU_ENVSPEC_HPP

/// \file envspec.hpp
/// \brief Strict parsing of comma-separated key=value environment specs.
///
/// Shared by the PUMI_FAULTS and PUMI_RELIABLE parsers so both reject
/// malformed input the same way: every value must consume its whole token
/// (no trailing characters), unsigned fields reject signs, and every error
/// is a structured pcu::Error(kValidation) naming the bad token. The old
/// std::stod/stoull-based parsing silently accepted "drop=0.5xyz" (as 0.5)
/// and "seed=-1" (wrapped); these helpers exist so that can never happen
/// again.

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>

#include "pcu/error.hpp"

namespace pcu::envspec {

/// Fail parsing of `env`'s spec with a kValidation error; `why` must name
/// the offending token.
[[noreturn]] inline void fail(const std::string& env, const std::string& why) {
  throw Error(ErrorCode::kValidation, -1, env + ": " + why);
}

[[noreturn]] inline void badValue(const std::string& env,
                                  const std::string& key,
                                  const std::string& val,
                                  const std::string& want) {
  fail(env, "bad value \"" + val + "\" for \"" + key + "\" (want " + want +
                ")");
}

/// Full-token unsigned integer: rejects empty values, signs, trailing
/// characters, and overflow.
inline std::uint64_t parseU64(const std::string& env, const std::string& key,
                              const std::string& val) {
  std::uint64_t v = 0;
  const char* b = val.data();
  const char* e = b + val.size();
  const auto [p, ec] = std::from_chars(b, e, v);
  if (val.empty() || ec != std::errc{} || p != e)
    badValue(env, key, val, "a non-negative integer");
  return v;
}

/// Full-token integer constrained to [lo, hi].
inline int parseInt(const std::string& env, const std::string& key,
                    const std::string& val, int lo, int hi) {
  int v = 0;
  const char* b = val.data();
  const char* e = b + val.size();
  const auto [p, ec] = std::from_chars(b, e, v);
  if (val.empty() || ec != std::errc{} || p != e)
    badValue(env, key, val, "an integer");
  if (v < lo || v > hi)
    badValue(env, key, val,
             "an integer in [" + std::to_string(lo) + ", " +
                 std::to_string(hi) + "]");
  return v;
}

/// Full-token finite double (strtod-based so it works on toolchains without
/// floating-point from_chars); rejects inf/nan, empty and partial tokens.
inline double parseDouble(const std::string& env, const std::string& key,
                          const std::string& val) {
  if (val.empty() || std::isspace(static_cast<unsigned char>(val.front())))
    badValue(env, key, val, "a finite number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  if (end != val.c_str() + val.size() || errno == ERANGE || !std::isfinite(v))
    badValue(env, key, val, "a finite number");
  return v;
}

/// Full-token probability in [0, 1].
inline double parseProb(const std::string& env, const std::string& key,
                        const std::string& val) {
  const double v = parseDouble(env, key, val);
  if (v < 0.0 || v > 1.0)
    badValue(env, key, val, "a probability in [0, 1]");
  return v;
}

/// Full-token "RANK@PHASE" pair (the kill=/hang= rank-fault schedule):
/// both halves are bounded non-negative integers and must consume their
/// whole half of the token.
inline std::pair<int, int> parseRankAtPhase(const std::string& env,
                                            const std::string& key,
                                            const std::string& val) {
  const std::size_t at = val.find('@');
  if (at == std::string::npos)
    badValue(env, key, val, "RANK@PHASE");
  return {parseInt(env, key + " rank", val.substr(0, at), 0, 1 << 24),
          parseInt(env, key + " phase", val.substr(at + 1), 0, 1 << 30)};
}

/// Strict boolean: exactly 1/0/on/off/true/false.
inline bool parseBool(const std::string& env, const std::string& key,
                      const std::string& val) {
  if (val == "1" || val == "on" || val == "true") return true;
  if (val == "0" || val == "off" || val == "false") return false;
  badValue(env, key, val, "one of 1/0/on/off/true/false");
}

}  // namespace pcu::envspec

#endif  // PUMI_PCU_ENVSPEC_HPP
