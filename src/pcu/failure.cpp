#include "pcu/failure.hpp"

#include <chrono>

#include "pcu/trace.hpp"

namespace pcu::failure {

namespace {

std::atomic<std::uint64_t> g_heartbeats{0};
std::atomic<std::uint64_t> g_suspicions{0};
std::atomic<std::uint64_t> g_shrinks{0};
std::atomic<std::uint64_t> g_grows{0};
std::atomic<std::uint64_t> g_ranks_joined{0};
std::atomic<std::int64_t> g_last_detect_us{0};
std::atomic<std::int64_t> g_max_detect_us{0};

}  // namespace

std::int64_t nowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Stats stats() {
  Stats s;
  s.heartbeats = g_heartbeats.load(std::memory_order_relaxed);
  s.suspicions = g_suspicions.load(std::memory_order_relaxed);
  s.shrinks = g_shrinks.load(std::memory_order_relaxed);
  s.grows = g_grows.load(std::memory_order_relaxed);
  s.ranks_joined = g_ranks_joined.load(std::memory_order_relaxed);
  s.last_detect_us = g_last_detect_us.load(std::memory_order_relaxed);
  s.max_detect_us = g_max_detect_us.load(std::memory_order_relaxed);
  return s;
}

void resetStats() {
  g_heartbeats.store(0, std::memory_order_relaxed);
  g_suspicions.store(0, std::memory_order_relaxed);
  g_shrinks.store(0, std::memory_order_relaxed);
  g_grows.store(0, std::memory_order_relaxed);
  g_ranks_joined.store(0, std::memory_order_relaxed);
  g_last_detect_us.store(0, std::memory_order_relaxed);
  g_max_detect_us.store(0, std::memory_order_relaxed);
}

void noteHeartbeat() { g_heartbeats.fetch_add(1, std::memory_order_relaxed); }

void noteSuspicion(std::int64_t latency_us) {
  const auto total = g_suspicions.fetch_add(1, std::memory_order_relaxed) + 1;
  g_last_detect_us.store(latency_us, std::memory_order_relaxed);
  std::int64_t prev = g_max_detect_us.load(std::memory_order_relaxed);
  while (latency_us > prev &&
         !g_max_detect_us.compare_exchange_weak(prev, latency_us,
                                                std::memory_order_relaxed)) {
  }
  if (trace::enabled()) {
    trace::counter("fd:suspicions", static_cast<std::int64_t>(total));
    trace::counter("fd:suspicion_latency_us", latency_us);
    trace::counter("fd:heartbeats", static_cast<std::int64_t>(
                                        g_heartbeats.load(
                                            std::memory_order_relaxed)));
  }
}

void noteShrink() {
  const auto total = g_shrinks.fetch_add(1, std::memory_order_relaxed) + 1;
  if (trace::enabled())
    trace::counter("fd:shrink_events", static_cast<std::int64_t>(total));
}

void noteGrow(int ranks) {
  const auto total = g_grows.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto joined =
      g_ranks_joined.fetch_add(static_cast<std::uint64_t>(ranks),
                               std::memory_order_relaxed) +
      static_cast<std::uint64_t>(ranks);
  if (trace::enabled()) {
    trace::counter("fd:grow_events", static_cast<std::int64_t>(total));
    trace::counter("fd:ranks_joined", static_cast<std::int64_t>(joined));
  }
}

Detector::Detector(int ranks)
    : n_(ranks),
      last_beat_us_(new std::atomic<std::int64_t>[static_cast<std::size_t>(
          ranks)]),
      dead_(new std::atomic<bool>[static_cast<std::size_t>(ranks)]) {
  for (int r = 0; r < n_; ++r) {
    last_beat_us_[static_cast<std::size_t>(r)].store(
        0, std::memory_order_relaxed);
    dead_[static_cast<std::size_t>(r)].store(false, std::memory_order_relaxed);
  }
}

void Detector::arm(int deadline_ms) {
  if (deadline_ms <= 0 || armed()) return;
  std::lock_guard<std::mutex> lock(arm_mutex_);
  if (armed()) return;
  const std::int64_t now = nowUs();
  for (int r = 0; r < n_; ++r)
    last_beat_us_[static_cast<std::size_t>(r)].store(
        now, std::memory_order_relaxed);
  // Release: stamps above are visible before anyone can observe armed().
  deadline_ms_.store(deadline_ms, std::memory_order_release);
}

void Detector::beat(int rank) {
  last_beat_us_[static_cast<std::size_t>(rank)].store(
      nowUs(), std::memory_order_relaxed);
  noteHeartbeat();
}

void Detector::markDead(int rank) {
  bool expected = false;
  if (!dead_[static_cast<std::size_t>(rank)].compare_exchange_strong(
          expected, true, std::memory_order_acq_rel))
    return;  // already declared by another rank
  const std::int64_t latency =
      nowUs() -
      last_beat_us_[static_cast<std::size_t>(rank)].load(
          std::memory_order_relaxed);
  noteSuspicion(latency);
  revoked_.store(true, std::memory_order_release);
}

bool Detector::dead(int rank) const {
  return dead_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
}

int Detector::firstDead() const {
  for (int r = 0; r < n_; ++r)
    if (dead(r)) return r;
  return -1;
}

std::vector<int> Detector::deadRanks() const {
  std::vector<int> out;
  for (int r = 0; r < n_; ++r)
    if (dead(r)) out.push_back(r);
  return out;
}

std::vector<int> Detector::survivors() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n_));
  for (int r = 0; r < n_; ++r)
    if (!dead(r)) out.push_back(r);
  return out;
}

int Detector::suspectRank(int rank) {
  if (!armed() || rank < 0 || rank >= n_ || dead(rank)) return -1;
  const std::int64_t silent_us =
      nowUs() -
      last_beat_us_[static_cast<std::size_t>(rank)].load(
          std::memory_order_relaxed);
  if (silent_us <= static_cast<std::int64_t>(deadlineMs()) * 1000) return -1;
  markDead(rank);
  return rank;
}

int Detector::suspectAny() {
  for (int r = 0; r < n_; ++r)
    if (suspectRank(r) >= 0) return r;
  return -1;
}

}  // namespace pcu::failure
