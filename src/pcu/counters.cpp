#include "pcu/counters.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace pcu {

double now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

namespace {

/// Parse a "Vm...: N kB" line from /proc/self/status.
std::uint64_t readProcStatusKb(const std::string& key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) == 0) {
      std::istringstream iss(line.substr(key.size() + 1));
      std::uint64_t kb = 0;
      iss >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t currentMemoryBytes() { return readProcStatusKb("VmRSS") * 1024; }

std::uint64_t peakMemoryBytes() { return readProcStatusKb("VmHWM") * 1024; }

}  // namespace pcu
