#include "pcu/stats.hpp"

#include <algorithm>
#include <iostream>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "repro/table.hpp"

namespace pcu {

namespace {

struct PhaseAccum {
  // per rank: (total seconds, calls)
  std::map<int, std::pair<double, std::uint64_t>> per_rank;
};

}  // namespace

TraceReport buildTraceReport(const trace::Merged& merged) {
  // Phase names compare by content (literals may be duplicated across
  // translation units), so key maps by string.
  std::map<std::string, PhaseAccum> phases;
  std::map<std::string, ChannelStat> channels;
  std::map<std::tuple<std::string, int, int>, PairStat> pairs;
  std::map<std::string, CounterStat> counters;

  auto pairAt = [&](const char* channel, int src, int dst) -> PairStat& {
    auto key = std::make_tuple(std::string(channel), src, dst);
    auto it = pairs.find(key);
    if (it == pairs.end()) {
      PairStat p;
      p.channel = channel;
      p.src = src;
      p.dst = dst;
      it = pairs.emplace(std::move(key), std::move(p)).first;
    }
    return it->second;
  };

  for (const auto& t : merged.threads) {
    // Scope matching is per thread: a stack of open begins. Names match by
    // content; scopes are required to nest properly within a thread.
    std::vector<const trace::Event*> open;
    for (const auto& e : t.events) {
      switch (e.kind) {
        case trace::Kind::kBegin:
          open.push_back(&e);
          break;
        case trace::Kind::kEnd: {
          if (open.empty()) break;  // stray end: drop
          const trace::Event* b = open.back();
          open.pop_back();
          auto& [seconds, calls] = phases[b->name].per_rank[b->rank];
          seconds += e.ts - b->ts;
          calls += 1;
          break;
        }
        case trace::Kind::kSend: {
          auto& c = channels[e.name];
          c.channel = e.name;
          c.send_messages += 1;
          c.send_bytes += static_cast<std::uint64_t>(e.value);
          auto& p = pairAt(e.name, e.rank, e.peer);
          p.send_messages += 1;
          p.send_bytes += static_cast<std::uint64_t>(e.value);
          break;
        }
        case trace::Kind::kRecv: {
          auto& c = channels[e.name];
          c.channel = e.name;
          c.recv_messages += 1;
          c.recv_bytes += static_cast<std::uint64_t>(e.value);
          auto& p = pairAt(e.name, e.peer, e.rank);
          p.recv_messages += 1;
          p.recv_bytes += static_cast<std::uint64_t>(e.value);
          break;
        }
        case trace::Kind::kCounter: {
          auto& c = counters[e.name];
          if (c.samples == 0) {
            c.name = e.name;
            c.min = c.max = e.value;
          }
          c.samples += 1;
          c.last = e.value;
          c.min = std::min(c.min, e.value);
          c.max = std::max(c.max, e.value);
          break;
        }
        case trace::Kind::kInstant:
          break;
      }
    }
  }

  TraceReport report;
  for (auto& [name, accum] : phases) {
    PhaseStat s;
    s.name = name;
    s.ranks = static_cast<int>(accum.per_rank.size());
    bool first = true;
    for (const auto& [rank, sc] : accum.per_rank) {
      (void)rank;
      const auto& [seconds, calls] = sc;
      s.total_seconds += seconds;
      s.calls += calls;
      s.min_seconds = first ? seconds : std::min(s.min_seconds, seconds);
      s.max_seconds = first ? seconds : std::max(s.max_seconds, seconds);
      first = false;
    }
    s.mean_seconds = s.ranks > 0 ? s.total_seconds / s.ranks : 0.0;
    s.imbalance = s.mean_seconds > 0.0 ? s.max_seconds / s.mean_seconds : 1.0;
    report.phases.push_back(std::move(s));
  }
  std::sort(report.phases.begin(), report.phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              return a.max_seconds > b.max_seconds;
            });
  for (auto& [name, c] : channels) {
    (void)name;
    report.channels.push_back(std::move(c));
  }
  for (auto& [key, p] : pairs) {
    (void)key;
    report.pairs.push_back(std::move(p));
  }
  for (auto& [name, c] : counters) {
    (void)name;
    report.counters.push_back(std::move(c));
  }
  return report;
}

TraceReport buildTraceReport(const trace::Merged& merged,
                             std::string_view tenant) {
  // Cut the tenant's slice of the stream, then aggregate it like any other
  // trace. Scope matching stays valid because a TenantScope brackets whole
  // jobs: a tenant's begin/end pairs are stamped together.
  trace::Merged filtered;
  for (const auto& t : merged.threads) {
    trace::ThreadEvents cut;
    cut.tid = t.tid;
    for (const auto& e : t.events)
      if (e.tenant != nullptr && tenant == e.tenant) cut.events.push_back(e);
    if (!cut.events.empty()) filtered.threads.push_back(std::move(cut));
  }
  return buildTraceReport(filtered);
}

TraceReport buildTraceReport() { return buildTraceReport(trace::snapshot()); }

void printTraceReport(const TraceReport& report, std::ostream& os) {
  os << "== pcu::trace per-phase report (times across ranks) ==\n";
  {
    repro::Table t({"Phase", "Ranks", "Calls", "Min s", "Mean s", "Max s",
                    "Imbalance"});
    for (const auto& p : report.phases)
      t.row({p.name, repro::fmt(p.ranks),
             repro::fmt(static_cast<std::size_t>(p.calls)),
             repro::fmt(p.min_seconds, 4), repro::fmt(p.mean_seconds, 4),
             repro::fmt(p.max_seconds, 4), repro::fmt(p.imbalance, 2)});
    t.print(os);
  }
  os << "\n== message volume per channel ==\n";
  {
    repro::Table t({"Channel", "Sent", "Sent bytes", "Received",
                    "Received bytes"});
    for (const auto& c : report.channels)
      t.row({c.channel, repro::fmt(static_cast<std::size_t>(c.send_messages)),
             repro::fmt(static_cast<std::size_t>(c.send_bytes)),
             repro::fmt(static_cast<std::size_t>(c.recv_messages)),
             repro::fmt(static_cast<std::size_t>(c.recv_bytes))});
    t.print(os);
  }
  if (!report.counters.empty()) {
    os << "\n== counters ==\n";
    repro::Table t({"Counter", "Samples", "Last", "Min", "Max"});
    for (const auto& c : report.counters)
      t.row({c.name, repro::fmt(static_cast<std::size_t>(c.samples)),
             std::to_string(c.last), std::to_string(c.min),
             std::to_string(c.max)});
    t.print(os);
  }
}

void printTraceReport(const TraceReport& report) {
  printTraceReport(report, std::cout);
}

}  // namespace pcu
