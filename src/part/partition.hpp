#ifndef PUMI_PART_PARTITION_HPP
#define PUMI_PART_PARTITION_HPP

/// \file partition.hpp
/// \brief Baseline mesh partitioners (the paper's comparison methods).
///
/// The paper's test T0 partitions with Zoltan's parallel hypergraph
/// partitioner (PHG); graph-based and geometric methods are discussed as
/// the standard alternatives (Sec. III). We implement the family from
/// scratch:
///
///   - RCB: recursive coordinate bisection (geometric, fastest, poorest
///     boundaries),
///   - RIB: recursive inertial bisection (geometric, axis-free),
///   - GreedyGrow: greedy graph growing from seeds,
///   - GraphRB: recursive graph bisection with FM-style boundary
///     refinement minimizing the face cut,
///   - HypergraphRB: the same recursion with hyperedge (mesh vertex)
///     connectivity gains — the PHG stand-in; best boundaries, slowest.
///
/// All methods are deterministic for a given seed and return one
/// destination part per element, aligned with mesh iteration order (ready
/// for PartedMesh::distribute).

#include <vector>

#include "dist/types.hpp"
#include "part/graph.hpp"

namespace part {

using dist::PartId;

enum class Method { RCB, RIB, GreedyGrow, GraphRB, HypergraphRB };

[[nodiscard]] const char* methodName(Method m);

struct PartitionOptions {
  /// Allowed element (weight) imbalance during refinement, as max/avg - 1.
  double balance_tolerance = 0.03;
  /// FM refinement passes per bisection (graph/hypergraph methods).
  int refine_passes = 6;
  /// Deterministic seed for tie-breaking.
  std::uint64_t seed = 42;
};

/// Partition a prebuilt element graph into nparts.
std::vector<PartId> partitionGraph(const ElemGraph& graph, int nparts,
                                   Method method,
                                   const PartitionOptions& opts = {});

/// Convenience: build the graph and partition a serial mesh.
std::vector<PartId> partition(const core::Mesh& mesh, int nparts,
                              Method method,
                              const PartitionOptions& opts = {});

/// --- partition quality metrics -----------------------------------------

/// Weight of the heaviest part divided by the average part weight.
double imbalanceOf(const std::vector<PartId>& assignment,
                   const std::vector<double>& weights, int nparts);

/// Number of graph edges crossing parts (each counted once).
std::size_t edgeCut(const ElemGraph& graph,
                    const std::vector<PartId>& assignment);

/// Hyperedge connectivity cost: sum over mesh vertices of
/// (parts touching the vertex - 1); the quantity PHG minimizes.
std::size_t hyperedgeCut(const ElemGraph& graph,
                         const std::vector<PartId>& assignment);

}  // namespace part

#endif  // PUMI_PART_PARTITION_HPP
