#include "part/coloring.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/flatmap.hpp"

namespace part {

using core::Ent;
using core::EntHash;

namespace {

/// Conflicting neighbours of an element under the relation.
std::vector<Ent> conflicts(const core::Mesh& mesh, Ent e,
                           ColorRelation relation) {
  const int dim = core::topoDim(e.topo());
  const int bridge = relation == ColorRelation::SharedVertex ? 0 : dim - 1;
  std::vector<Ent> out;
  std::array<Ent, core::kMaxDown> buf{};
  const int n = mesh.downward(e, bridge, buf.data());
  for (int i = 0; i < n; ++i) {
    for (Ent other : mesh.adjacentSpan(buf[static_cast<std::size_t>(i)], dim))
      if (other != e &&
          std::find(out.begin(), out.end(), other) == out.end())
        out.push_back(other);
  }
  return out;
}

}  // namespace

Coloring colorElements(const core::Mesh& mesh, ColorRelation relation) {
  const int dim = mesh.dim();
  Coloring c;
  c.color.assign(mesh.count(dim), -1);
  common::FlatMap<Ent, std::size_t, EntHash> index;
  std::vector<Ent> elems;
  elems.reserve(mesh.count(dim));
  for (Ent e : mesh.entities(dim)) {
    index.emplace(e, elems.size());
    elems.push_back(e);
  }
  std::vector<char> used;  // feasibility scratch per element
  for (std::size_t i = 0; i < elems.size(); ++i) {
    used.assign(static_cast<std::size_t>(c.colors) + 1, 0);
    for (Ent nb : conflicts(mesh, elems[i], relation)) {
      const int nb_color = c.color[index.at(nb)];
      if (nb_color >= 0) used[static_cast<std::size_t>(nb_color)] = 1;
    }
    int pick = 0;
    while (used[static_cast<std::size_t>(pick)]) ++pick;
    c.color[i] = pick;
    c.colors = std::max(c.colors, pick + 1);
  }
  return c;
}

void verifyColoring(const core::Mesh& mesh, const Coloring& coloring,
                    ColorRelation relation) {
  const int dim = mesh.dim();
  common::FlatMap<Ent, std::size_t, EntHash> index;
  std::vector<Ent> elems;
  for (Ent e : mesh.entities(dim)) {
    index.emplace(e, elems.size());
    elems.push_back(e);
  }
  if (coloring.color.size() != elems.size())
    throw std::logic_error("coloring: wrong element count");
  for (std::size_t i = 0; i < elems.size(); ++i) {
    if (coloring.color[i] < 0 || coloring.color[i] >= coloring.colors)
      throw std::logic_error("coloring: color id out of range");
    for (Ent nb : conflicts(mesh, elems[i], relation))
      if (coloring.color[index.at(nb)] == coloring.color[i])
        throw std::logic_error("coloring: conflicting elements share a color");
  }
}

}  // namespace part
