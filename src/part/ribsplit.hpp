#ifndef PUMI_PART_RIBSPLIT_HPP
#define PUMI_PART_RIBSPLIT_HPP

/// \file ribsplit.hpp
/// \brief Graph-free recursive inertial bisection (RIB) splitter.
///
/// partitionGraph(Method::RIB) needs a full ElemGraph — element adjacency
/// through faces plus vertex incidence — even though inertial bisection
/// never looks at an edge. This is the direct form used by elastic
/// scale-out: it works straight off element centroids and weights, so
/// carving a heavy part onto newly joined ranks costs one coordinate pass
/// instead of an adjacency build. Semantics follow the classic ParMA RIB
/// splitter (Parma_MakeRibSplitter): recursive weighted-median cuts along
/// the principal axis of the centroid cloud's inertia, with piece counts
/// divided proportionally at every level so any factor — not only powers
/// of two — comes out balanced.

#include <vector>

#include "core/mesh.hpp"

namespace part {

/// Split `elems` of `mesh` into `pieces` groups by recursive inertial
/// bisection over element centroids. Returns one piece index in
/// [0, pieces) per element, aligned with `elems`; `weights` (optional,
/// empty means unit loads) gives per-element loads the median cuts
/// balance. Deterministic: ties on the projection key break by element
/// order. Throws pcu::Error(kValidation) on pieces < 1 or a weights
/// vector whose length disagrees with `elems`.
std::vector<int> ribSplit(const core::Mesh& mesh,
                          const std::vector<core::Ent>& elems, int pieces,
                          const std::vector<double>& weights = {});

}  // namespace part

#endif  // PUMI_PART_RIBSPLIT_HPP
