#ifndef PUMI_PART_COLORING_HPP
#define PUMI_PART_COLORING_HPP

/// \file coloring.hpp
/// \brief Coloring into small independent sets (paper Sec. I): the second
/// form of on-node decomposition, "advantageous for on-node threaded
/// operations using a shared memory".
///
/// Elements of one color form an independent set under the chosen
/// relation (sharing a vertex, or only a face), so threads may process a
/// color concurrently without locking — e.g. assembling into shared
/// degrees of freedom.

#include <vector>

#include "core/mesh.hpp"

namespace part {

enum class ColorRelation {
  SharedVertex,  ///< elements conflict when they share any vertex
  SharedFace,    ///< elements conflict only across faces
};

struct Coloring {
  /// color id per element, aligned with mesh iteration order.
  std::vector<int> color;
  int colors = 0;

  /// Elements of one color, as indices into iteration order.
  [[nodiscard]] std::vector<std::size_t> members(int c) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < color.size(); ++i)
      if (color[i] == c) out.push_back(i);
    return out;
  }
};

/// Greedy balanced coloring of the mesh's elements. Deterministic; colors
/// are assigned smallest-feasible-first, which keeps the color count near
/// the maximum conflict degree.
Coloring colorElements(const core::Mesh& mesh,
                       ColorRelation relation = ColorRelation::SharedVertex);

/// Validate: no two elements of equal color conflict. Throws
/// std::logic_error on violation (test/debug helper).
void verifyColoring(const core::Mesh& mesh, const Coloring& coloring,
                    ColorRelation relation);

}  // namespace part

#endif  // PUMI_PART_COLORING_HPP
