#ifndef PUMI_PART_LOCALSPLIT_HPP
#define PUMI_PART_LOCALSPLIT_HPP

/// \file localsplit.hpp
/// \brief Local (per-part) splitting: partition each part's elements
/// independently and migrate into freshly added parts.
///
/// This is how the paper scales partitions beyond the reach of global
/// partitioners: "this partition is created by locally partitioning each
/// part of a 16,384 part mesh with Zoltan Hypergraph to 96 parts"
/// (Sec. III-A), reaching 1.5M parts. It is also the second stage of
/// two-level partitioning: global partition to nodes, local split to cores.

#include "dist/partedmesh.hpp"
#include "part/partition.hpp"

namespace part {

/// Split every current part into `factor` subparts with `method` applied to
/// its local element graph. Subpart 0 stays in place; the rest migrate to
/// newly added parts. Afterwards the mesh has factor * old_parts parts.
/// Returns the ids of the parts created.
std::vector<PartId> localSplit(dist::PartedMesh& pm, int factor,
                               Method method,
                               const PartitionOptions& opts = {});

}  // namespace part

#endif  // PUMI_PART_LOCALSPLIT_HPP
