#include "part/reorder.hpp"

#include "core/order.hpp"

namespace part {

using core::Ent;

// The ordering kernels themselves live in core/order (flat slot-indexed
// arrays, reachable from dist::distribute); this layer re-packages them
// into the map-based Ordering consumers of this API expect.

Ordering reorderVertices(const core::Mesh& mesh) {
  Ordering out;
  out.order = core::order::rcmVertices(mesh);
  out.rank.reserve(out.order.size());
  for (std::size_t i = 0; i < out.order.size(); ++i)
    out.rank.emplace(out.order[i], static_cast<int>(i));
  return out;
}

Ordering reorderElements(const core::Mesh& mesh, const Ordering& verts) {
  Ordering out;
  const auto vranks = core::order::ranksOf(mesh, verts.order);
  out.order = core::order::byMinVertexRank(mesh, mesh.dim(), vranks);
  out.rank.reserve(out.order.size());
  for (std::size_t i = 0; i < out.order.size(); ++i)
    out.rank.emplace(out.order[i], static_cast<int>(i));
  return out;
}

std::size_t bandwidth(const core::Mesh& mesh, const Ordering& verts) {
  return core::order::bandwidth(mesh,
                                core::order::ranksOf(mesh, verts.order));
}

}  // namespace part
