#include "part/reorder.hpp"

#include <algorithm>
#include <deque>

namespace part {

using core::Ent;

namespace {

/// Other endpoint of an edge.
Ent otherVertex(const core::Mesh& mesh, Ent edge, Ent v) {
  const auto vs = mesh.verts(edge);
  return vs[0] == v ? vs[1] : vs[0];
}

/// BFS from `seed`; returns visit order (restarting on disconnection).
std::vector<Ent> bfs(const core::Mesh& mesh, Ent seed) {
  std::unordered_map<Ent, char, core::EntHash> visited;
  std::vector<Ent> order;
  order.reserve(mesh.count(0));
  std::deque<Ent> queue;
  auto push = [&](Ent v) {
    if (visited.emplace(v, 1).second) queue.push_back(v);
  };
  push(seed);
  auto restart = mesh.entities(0).begin();
  const auto end = mesh.entities(0).end();
  while (order.size() < mesh.count(0)) {
    if (queue.empty()) {
      while (restart != end && visited.count(*restart)) ++restart;
      if (restart == end) break;
      push(*restart);
    }
    const Ent v = queue.front();
    queue.pop_front();
    order.push_back(v);
    // Neighbours in ascending degree (the Cuthill-McKee tie-break).
    std::vector<std::pair<std::uint32_t, Ent>> nbrs;
    for (Ent e : mesh.up(v)) {
      const Ent o = otherVertex(mesh, e, v);
      if (!visited.count(o)) nbrs.emplace_back(mesh.up(o).size(), o);
    }
    std::sort(nbrs.begin(), nbrs.end());
    for (const auto& [deg, o] : nbrs) {
      (void)deg;
      push(o);
    }
  }
  return order;
}

}  // namespace

Ordering reorderVertices(const core::Mesh& mesh) {
  Ordering out;
  if (mesh.count(0) == 0) return out;
  // Pseudo-peripheral seed: the last vertex of a BFS from the first.
  const Ent first = *mesh.entities(0).begin();
  const Ent peripheral = bfs(mesh, first).back();
  auto order = bfs(mesh, peripheral);
  // Reverse (RCM).
  std::reverse(order.begin(), order.end());
  out.rank.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    out.rank.emplace(order[i], static_cast<int>(i));
  out.order = std::move(order);
  return out;
}

Ordering reorderElements(const core::Mesh& mesh, const Ordering& verts) {
  Ordering out;
  const int dim = mesh.dim();
  std::vector<std::pair<int, Ent>> keyed;
  keyed.reserve(mesh.count(dim));
  for (Ent e : mesh.entities(dim)) {
    int best = static_cast<int>(verts.order.size());
    for (Ent v : mesh.verts(e)) best = std::min(best, verts.rank.at(v));
    keyed.emplace_back(best, e);
  }
  std::sort(keyed.begin(), keyed.end());
  out.order.reserve(keyed.size());
  for (const auto& [k, e] : keyed) {
    (void)k;
    out.rank.emplace(e, static_cast<int>(out.order.size()));
    out.order.push_back(e);
  }
  return out;
}

std::size_t bandwidth(const core::Mesh& mesh, const Ordering& verts) {
  std::size_t bw = 0;
  for (Ent e : mesh.entities(1)) {
    const auto vs = mesh.verts(e);
    const int a = verts.rank.at(vs[0]);
    const int b = verts.rank.at(vs[1]);
    bw = std::max(bw, static_cast<std::size_t>(std::abs(a - b)));
  }
  return bw;
}

}  // namespace part
