#include "part/localsplit.hpp"

#include <stdexcept>

namespace part {

std::vector<PartId> localSplit(dist::PartedMesh& pm, int factor,
                               Method method, const PartitionOptions& opts) {
  if (factor < 2) throw std::invalid_argument("localSplit: factor >= 2");
  const int old_parts = pm.parts();
  dist::MigrationPlan plan(static_cast<std::size_t>(old_parts));
  std::vector<PartId> created;

  for (PartId p = 0; p < old_parts; ++p) {
    const auto& part = pm.part(p);
    if (part.elementCount() < static_cast<std::size_t>(factor)) continue;
    const ElemGraph g = buildElemGraph(part.mesh());
    const auto sub = partitionGraph(g, factor, method, opts);
    // Subpart 0 keeps part p; others go to fresh parts.
    std::vector<PartId> target(static_cast<std::size_t>(factor), p);
    for (int s = 1; s < factor; ++s) {
      const PartId fresh = pm.addPart();
      target[static_cast<std::size_t>(s)] = fresh;
      created.push_back(fresh);
    }
    for (int i = 0; i < g.size(); ++i) {
      const PartId dest = target[static_cast<std::size_t>(sub[static_cast<std::size_t>(i)])];
      if (dest != p)
        plan[static_cast<std::size_t>(p)][g.elems[static_cast<std::size_t>(i)]] =
            dest;
    }
  }
  plan.resize(static_cast<std::size_t>(pm.parts()));
  pm.migrate(plan);
  return created;
}

}  // namespace part
