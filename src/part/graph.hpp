#ifndef PUMI_PART_GRAPH_HPP
#define PUMI_PART_GRAPH_HPP

/// \file graph.hpp
/// \brief Element graph extraction from mesh adjacencies.
///
/// Graph/hypergraph partitioners view the mesh as a graph whose nodes are
/// elements and whose edges join elements sharing a face (paper Sec. III:
/// "one piece of the mesh connectivity information via the definition of
/// graph edges"). The hypergraph view additionally keeps, per element, its
/// mesh vertices — each mesh vertex is a hyperedge joining all elements
/// around it.

#include <unordered_map>
#include <vector>

#include "common/vec.hpp"
#include "core/mesh.hpp"

namespace part {

using core::Ent;
using core::EntHash;

struct ElemGraph {
  /// node -> element handle, in mesh iteration order (so partition vectors
  /// align with PartedMesh::distribute input).
  std::vector<Ent> elems;
  std::unordered_map<Ent, int, EntHash> index;
  /// Face neighbours of each node.
  std::vector<std::vector<int>> adj;
  /// Element centroids (geometric methods).
  std::vector<common::Vec3> centroids;
  /// Node weights (default 1; predictive balancing can override).
  std::vector<double> weights;
  /// Hyperedges: for each node, the ids of its mesh vertices; vertex ids
  /// are dense [0, vertexCount).
  std::vector<std::vector<int>> node_verts;
  /// For each mesh vertex id, the nodes around it.
  std::vector<std::vector<int>> vert_nodes;

  [[nodiscard]] int size() const { return static_cast<int>(elems.size()); }
};

/// Build the element graph of a serial mesh (or one part's local mesh).
ElemGraph buildElemGraph(const core::Mesh& mesh);

}  // namespace part

#endif  // PUMI_PART_GRAPH_HPP
