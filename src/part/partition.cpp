#include "part/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "common/mat.hpp"
#include "common/rng.hpp"

namespace part {

const char* methodName(Method m) {
  switch (m) {
    case Method::RCB: return "RCB";
    case Method::RIB: return "RIB";
    case Method::GreedyGrow: return "GreedyGrow";
    case Method::GraphRB: return "GraphRB";
    case Method::HypergraphRB: return "HypergraphRB";
  }
  return "?";
}

namespace {

double totalWeight(const ElemGraph& g, const std::vector<int>& nodes) {
  double w = 0.0;
  for (int i : nodes) w += g.weights[static_cast<std::size_t>(i)];
  return w;
}

/// Split `nodes` by scalar key into (A, B) with weight(A) ~ frac * total.
void splitByKey(const ElemGraph& g, std::vector<int> nodes,
                const std::vector<double>& key, double frac,
                std::vector<int>& a, std::vector<int>& b) {
  std::sort(nodes.begin(), nodes.end(), [&](int x, int y) {
    if (key[static_cast<std::size_t>(x)] != key[static_cast<std::size_t>(y)])
      return key[static_cast<std::size_t>(x)] < key[static_cast<std::size_t>(y)];
    return x < y;
  });
  const double target = frac * totalWeight(g, nodes);
  double acc = 0.0;
  std::size_t cut = 0;
  while (cut < nodes.size() && acc < target)
    acc += g.weights[static_cast<std::size_t>(nodes[cut++])];
  // Never produce an empty side.
  cut = std::clamp<std::size_t>(cut, 1, nodes.size() - 1);
  a.assign(nodes.begin(), nodes.begin() + static_cast<std::ptrdiff_t>(cut));
  b.assign(nodes.begin() + static_cast<std::ptrdiff_t>(cut), nodes.end());
}

/// BFS over the subset from `seed`; returns visit order.
std::vector<int> bfsOrder(const ElemGraph& g, const std::vector<int>& nodes,
                          const std::vector<char>& in_subset, int seed) {
  std::vector<char> visited(static_cast<std::size_t>(g.size()), 0);
  std::vector<int> order;
  order.reserve(nodes.size());
  std::deque<int> queue;
  auto push = [&](int n) {
    if (!visited[static_cast<std::size_t>(n)]) {
      visited[static_cast<std::size_t>(n)] = 1;
      queue.push_back(n);
    }
  };
  push(seed);
  std::size_t scan = 0;  // restart cursor for disconnected subsets
  while (order.size() < nodes.size()) {
    if (queue.empty()) {
      while (scan < nodes.size() &&
             visited[static_cast<std::size_t>(nodes[scan])])
        ++scan;
      if (scan == nodes.size()) break;
      push(nodes[scan]);
    }
    const int n = queue.front();
    queue.pop_front();
    order.push_back(n);
    for (int nb : g.adj[static_cast<std::size_t>(n)])
      if (in_subset[static_cast<std::size_t>(nb)]) push(nb);
  }
  return order;
}

/// side[] values during bisection refinement.
constexpr char kOutside = -1;
constexpr char kSideA = 0;
constexpr char kSideB = 1;

struct Bisection {
  std::vector<int> a, b;
  double wa = 0.0, wb = 0.0;
};

/// Face-cut gain of moving node n to the other side.
int graphGain(const ElemGraph& g, const std::vector<char>& side, int n) {
  const char mine = side[static_cast<std::size_t>(n)];
  int same = 0, other = 0;
  for (int nb : g.adj[static_cast<std::size_t>(n)]) {
    const char s = side[static_cast<std::size_t>(nb)];
    if (s == kOutside) continue;
    if (s == mine)
      ++same;
    else
      ++other;
  }
  return other - same;
}

/// Hyperedge-connectivity gain of moving node n to the other side.
int hyperGain(const ElemGraph& g, const std::vector<char>& side, int n) {
  const char mine = side[static_cast<std::size_t>(n)];
  int gain = 0;
  for (int v : g.node_verts[static_cast<std::size_t>(n)]) {
    int a = 0, b = 0;
    for (int nb : g.vert_nodes[static_cast<std::size_t>(v)]) {
      const char s = side[static_cast<std::size_t>(nb)];
      if (s == kOutside) continue;
      if (s == mine)
        ++a;  // includes n itself
      else
        ++b;
    }
    // Moving n: vertex leaves the boundary when it was n's side's only
    // node there (a == 1) and gains a boundary when the other side was
    // empty (b == 0).
    if (a == 1 && b > 0) ++gain;
    if (b == 0 && a > 1) --gain;
  }
  return gain;
}

/// Fiduccia-Mattheyses-style refinement: greedy positive-gain boundary
/// moves under a balance constraint, repeated for a few passes.
void fmRefine(const ElemGraph& g, std::vector<char>& side, Bisection& bi,
              double frac, const PartitionOptions& opts, bool hypergraph) {
  const double total = bi.wa + bi.wb;
  const double target_a = frac * total;
  const double tol = opts.balance_tolerance * total;
  auto gainOf = [&](int n) {
    return hypergraph ? hyperGain(g, side, n) : graphGain(g, side, n);
  };
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    // Boundary nodes with their gains.
    std::vector<std::pair<int, int>> cand;  // (-gain, node) for sorting
    auto consider = [&](int n) {
      bool boundary = false;
      for (int nb : g.adj[static_cast<std::size_t>(n)])
        if (side[static_cast<std::size_t>(nb)] != kOutside &&
            side[static_cast<std::size_t>(nb)] != side[static_cast<std::size_t>(n)])
          boundary = true;
      if (boundary) cand.emplace_back(-gainOf(n), n);
    };
    for (int n : bi.a) consider(n);
    for (int n : bi.b) consider(n);
    std::sort(cand.begin(), cand.end());
    bool moved = false;
    for (const auto& [neg_gain, n] : cand) {
      const int gain = gainOf(n);  // recompute: earlier moves changed it
      if (gain <= 0) continue;
      const char mine = side[static_cast<std::size_t>(n)];
      const double w = g.weights[static_cast<std::size_t>(n)];
      const double wa_after = mine == kSideA ? bi.wa - w : bi.wa + w;
      const double err_now = std::fabs(bi.wa - target_a);
      const double err_after = std::fabs(wa_after - target_a);
      if (err_after > err_now && err_after > tol) continue;
      side[static_cast<std::size_t>(n)] = mine == kSideA ? kSideB : kSideA;
      bi.wa = wa_after;
      bi.wb = total - wa_after;
      moved = true;
    }
    if (!moved) break;
    // Rebuild side lists.
    std::vector<int> na, nb;
    for (int n : bi.a)
      (side[static_cast<std::size_t>(n)] == kSideA ? na : nb).push_back(n);
    for (int n : bi.b)
      (side[static_cast<std::size_t>(n)] == kSideA ? na : nb).push_back(n);
    bi.a = std::move(na);
    bi.b = std::move(nb);
  }
}

/// One bisection of `nodes` into weight fractions (frac, 1-frac).
Bisection bisect(const ElemGraph& g, const std::vector<int>& nodes,
                 double frac, Method method, const PartitionOptions& opts) {
  Bisection bi;
  if (method == Method::RCB || method == Method::RIB) {
    std::vector<double> key(static_cast<std::size_t>(g.size()), 0.0);
    if (method == Method::RCB) {
      common::Box3 box;
      for (int n : nodes) box.include(g.centroids[static_cast<std::size_t>(n)]);
      const int axis = box.longestAxis();
      for (int n : nodes)
        key[static_cast<std::size_t>(n)] =
            g.centroids[static_cast<std::size_t>(n)][axis];
    } else {
      // Principal axis of the weighted centroid cloud.
      common::Vec3 mean{};
      double wsum = 0.0;
      for (int n : nodes) {
        mean += g.centroids[static_cast<std::size_t>(n)] *
                g.weights[static_cast<std::size_t>(n)];
        wsum += g.weights[static_cast<std::size_t>(n)];
      }
      mean /= wsum;
      common::Mat3 cov;
      for (int n : nodes) {
        const common::Vec3 d = g.centroids[static_cast<std::size_t>(n)] - mean;
        cov += common::Mat3::outer(d, d) * g.weights[static_cast<std::size_t>(n)];
      }
      const auto eig = common::symmetricEigen(cov);
      const common::Vec3 axis = eig.vectors[0];
      for (int n : nodes)
        key[static_cast<std::size_t>(n)] =
            common::dot(g.centroids[static_cast<std::size_t>(n)], axis);
    }
    splitByKey(g, nodes, key, frac, bi.a, bi.b);
  } else {
    // BFS layering from a pseudo-peripheral seed.
    std::vector<char> in_subset(static_cast<std::size_t>(g.size()), 0);
    for (int n : nodes) in_subset[static_cast<std::size_t>(n)] = 1;
    auto first = bfsOrder(g, nodes, in_subset, nodes.front());
    const int peripheral = first.back();
    auto order = bfsOrder(g, nodes, in_subset, peripheral);
    const double target = frac * totalWeight(g, nodes);
    double acc = 0.0;
    std::size_t cut = 0;
    while (cut < order.size() && acc < target)
      acc += g.weights[static_cast<std::size_t>(order[cut++])];
    cut = std::clamp<std::size_t>(cut, 1, order.size() - 1);
    bi.a.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(cut));
    bi.b.assign(order.begin() + static_cast<std::ptrdiff_t>(cut), order.end());
  }
  bi.wa = totalWeight(g, bi.a);
  bi.wb = totalWeight(g, bi.b);
  if (method == Method::GraphRB || method == Method::HypergraphRB) {
    std::vector<char> side(static_cast<std::size_t>(g.size()), kOutside);
    for (int n : bi.a) side[static_cast<std::size_t>(n)] = kSideA;
    for (int n : bi.b) side[static_cast<std::size_t>(n)] = kSideB;
    fmRefine(g, side, bi, frac, opts, method == Method::HypergraphRB);
  }
  return bi;
}

void recurse(const ElemGraph& g, std::vector<int> nodes, int p0, int p1,
             Method method, const PartitionOptions& opts,
             std::vector<PartId>& out) {
  assert(!nodes.empty());
  if (p1 - p0 == 1) {
    for (int n : nodes) out[static_cast<std::size_t>(n)] = p0;
    return;
  }
  const int k_left = (p1 - p0 + 1) / 2;
  const double frac = static_cast<double>(k_left) / (p1 - p0);
  Bisection bi = bisect(g, nodes, frac, method, opts);
  recurse(g, std::move(bi.a), p0, p0 + k_left, method, opts, out);
  recurse(g, std::move(bi.b), p0 + k_left, p1, method, opts, out);
}

std::vector<PartId> greedyGrow(const ElemGraph& g, int nparts,
                               const PartitionOptions& opts) {
  (void)opts;
  const int n = g.size();
  std::vector<PartId> out(static_cast<std::size_t>(n), -1);
  const double total = std::accumulate(g.weights.begin(), g.weights.end(), 0.0);
  double remaining = total;
  int assigned = 0;
  int scan = 0;
  for (PartId p = 0; p < nparts; ++p) {
    const double target = remaining / (nparts - p);
    double acc = 0.0;
    std::deque<int> queue;
    auto seedNext = [&]() {
      while (scan < n && out[static_cast<std::size_t>(scan)] != -1) ++scan;
      if (scan < n) queue.push_back(scan);
    };
    seedNext();
    while (acc < target && assigned < n) {
      if (queue.empty()) {
        seedNext();
        if (queue.empty()) break;
      }
      const int node = queue.front();
      queue.pop_front();
      if (out[static_cast<std::size_t>(node)] != -1) continue;
      out[static_cast<std::size_t>(node)] = p;
      acc += g.weights[static_cast<std::size_t>(node)];
      ++assigned;
      for (int nb : g.adj[static_cast<std::size_t>(node)])
        if (out[static_cast<std::size_t>(nb)] == -1) queue.push_back(nb);
    }
    remaining -= acc;
    if (p + 1 == nparts) {
      // Sweep any stragglers into the last part.
      for (int i = 0; i < n; ++i)
        if (out[static_cast<std::size_t>(i)] == -1) {
          out[static_cast<std::size_t>(i)] = p;
          ++assigned;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<PartId> partitionGraph(const ElemGraph& graph, int nparts,
                                   Method method,
                                   const PartitionOptions& opts) {
  if (nparts < 1) throw std::invalid_argument("partition: nparts >= 1");
  if (graph.size() == 0) return {};
  if (nparts == 1) return std::vector<PartId>(static_cast<std::size_t>(graph.size()), 0);
  if (nparts > graph.size())
    throw std::invalid_argument("partition: more parts than elements");
  if (method == Method::GreedyGrow) return greedyGrow(graph, nparts, opts);
  std::vector<PartId> out(static_cast<std::size_t>(graph.size()), -1);
  std::vector<int> nodes(static_cast<std::size_t>(graph.size()));
  std::iota(nodes.begin(), nodes.end(), 0);
  recurse(graph, std::move(nodes), 0, nparts, method, opts, out);
  return out;
}

std::vector<PartId> partition(const core::Mesh& mesh, int nparts,
                              Method method, const PartitionOptions& opts) {
  return partitionGraph(buildElemGraph(mesh), nparts, method, opts);
}

double imbalanceOf(const std::vector<PartId>& assignment,
                   const std::vector<double>& weights, int nparts) {
  std::vector<double> load(static_cast<std::size_t>(nparts), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    load[static_cast<std::size_t>(assignment[i])] += weights[i];
    total += weights[i];
  }
  const double avg = total / nparts;
  double peak = 0.0;
  for (double l : load) peak = std::max(peak, l);
  return avg > 0.0 ? peak / avg : 0.0;
}

std::size_t edgeCut(const ElemGraph& graph,
                    const std::vector<PartId>& assignment) {
  std::size_t cut = 0;
  for (int i = 0; i < graph.size(); ++i)
    for (int nb : graph.adj[static_cast<std::size_t>(i)])
      if (nb > i &&
          assignment[static_cast<std::size_t>(i)] !=
              assignment[static_cast<std::size_t>(nb)])
        ++cut;
  return cut;
}

std::size_t hyperedgeCut(const ElemGraph& graph,
                         const std::vector<PartId>& assignment) {
  std::size_t cost = 0;
  std::vector<PartId> seen;
  for (const auto& nodes : graph.vert_nodes) {
    seen.clear();
    for (int n : nodes) {
      const PartId p = assignment[static_cast<std::size_t>(n)];
      if (std::find(seen.begin(), seen.end(), p) == seen.end())
        seen.push_back(p);
    }
    if (!seen.empty()) cost += seen.size() - 1;
  }
  return cost;
}

}  // namespace part
