#ifndef PUMI_PART_REORDER_HPP
#define PUMI_PART_REORDER_HPP

/// \file reorder.hpp
/// \brief Mesh entity reordering for memory locality (PUMI ships a
/// Cuthill-McKee-style reordering; solvers and adjacency-heavy kernels
/// benefit from bandwidth reduction).
///
/// Orders vertices by breadth-first traversal from a pseudo-peripheral
/// vertex (reverse Cuthill-McKee) and elements by their lowest-ordered
/// vertex. Returns permutations; the mesh itself is immutable (handles are
/// stable), so consumers apply the ordering to their own arrays — e.g. the
/// FE solver numbers its rows with it.

#include <unordered_map>
#include <vector>

#include "core/mesh.hpp"

namespace part {

struct Ordering {
  /// Entities in the new order.
  std::vector<core::Ent> order;
  /// Entity -> position in `order`.
  std::unordered_map<core::Ent, int, core::EntHash> rank;
};

/// Reverse Cuthill-McKee ordering of the mesh vertices (edge adjacency).
Ordering reorderVertices(const core::Mesh& mesh);

/// Elements ordered by their minimum vertex rank under `verts` (ties by
/// handle), giving element traversals the same locality.
Ordering reorderElements(const core::Mesh& mesh, const Ordering& verts);

/// Bandwidth of the vertex-edge graph under an ordering: max |rank(a) -
/// rank(b)| over edges. RCM exists to shrink this.
std::size_t bandwidth(const core::Mesh& mesh, const Ordering& verts);

}  // namespace part

#endif  // PUMI_PART_REORDER_HPP
