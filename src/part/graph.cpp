#include "part/graph.hpp"

#include <array>

#include "core/measure.hpp"

namespace part {

ElemGraph buildElemGraph(const core::Mesh& mesh) {
  ElemGraph g;
  const int dim = mesh.dim();
  g.elems.reserve(mesh.count(dim));
  for (Ent e : mesh.entities(dim)) {
    g.index.emplace(e, g.size());
    g.elems.push_back(e);
    g.centroids.push_back(core::centroid(mesh, e));
    g.weights.push_back(1.0);
  }
  g.adj.resize(g.elems.size());
  g.node_verts.resize(g.elems.size());

  // Face adjacency via shared dim-1 entities.
  std::array<Ent, core::kMaxDown> buf{};
  for (int i = 0; i < g.size(); ++i) {
    const Ent e = g.elems[static_cast<std::size_t>(i)];
    const int nf = mesh.downward(e, dim - 1, buf.data());
    for (int k = 0; k < nf; ++k) {
      for (Ent other : mesh.up(buf[static_cast<std::size_t>(k)])) {
        if (other == e) continue;
        auto it = g.index.find(other);
        if (it != g.index.end())
          g.adj[static_cast<std::size_t>(i)].push_back(it->second);
      }
    }
  }

  // Hyperedges: dense vertex ids.
  std::unordered_map<Ent, int, EntHash> vid;
  for (int i = 0; i < g.size(); ++i) {
    const Ent e = g.elems[static_cast<std::size_t>(i)];
    for (Ent v : mesh.verts(e)) {
      auto [it, inserted] = vid.emplace(v, static_cast<int>(vid.size()));
      if (inserted) g.vert_nodes.emplace_back();
      g.node_verts[static_cast<std::size_t>(i)].push_back(it->second);
      g.vert_nodes[static_cast<std::size_t>(it->second)].push_back(i);
    }
  }
  return g;
}

}  // namespace part
