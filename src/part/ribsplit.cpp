#include "part/ribsplit.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <string>

#include "common/mat.hpp"
#include "pcu/error.hpp"

namespace part {

namespace {

using common::Vec3;

/// The element cloud: one centroid and one weight per input element.
struct Cloud {
  std::vector<Vec3> centroids;
  std::vector<double> weights;
};

/// Recursively assign pieces [first_piece, first_piece + pieces) to the
/// elements indexed by `idx`. Each level cuts at the weighted median along
/// the principal inertial axis, splitting the piece budget proportionally.
void bisect(const Cloud& cloud, std::vector<int> idx, int pieces,
            int first_piece, std::vector<int>& piece_of) {
  if (pieces <= 1 || idx.size() <= 1) {
    for (int i : idx) piece_of[static_cast<std::size_t>(i)] = first_piece;
    // With more pieces than elements the extra pieces stay empty — the
    // caller asked for a finer split than the data supports.
    return;
  }
  const int left_pieces = pieces / 2;
  const double frac = static_cast<double>(left_pieces) / pieces;

  // Principal axis of the weighted centroid cloud.
  Vec3 mean{};
  double wsum = 0.0;
  for (int i : idx) {
    mean += cloud.centroids[static_cast<std::size_t>(i)] *
            cloud.weights[static_cast<std::size_t>(i)];
    wsum += cloud.weights[static_cast<std::size_t>(i)];
  }
  if (wsum > 0.0) mean = mean * (1.0 / wsum);
  common::Mat3 cov;
  for (int i : idx) {
    const Vec3 d = cloud.centroids[static_cast<std::size_t>(i)] - mean;
    cov += common::Mat3::outer(d, d) *
           cloud.weights[static_cast<std::size_t>(i)];
  }
  const Vec3 axis = common::symmetricEigen(cov).vectors[0];

  // Weighted-median cut along the axis; index tie-break keeps the split
  // deterministic even for degenerate clouds (all centroids coincident).
  std::sort(idx.begin(), idx.end(), [&](int a, int b) {
    const double ka = common::dot(cloud.centroids[static_cast<std::size_t>(a)],
                                  axis);
    const double kb = common::dot(cloud.centroids[static_cast<std::size_t>(b)],
                                  axis);
    if (ka != kb) return ka < kb;
    return a < b;
  });
  const double target = frac * wsum;
  double acc = 0.0;
  std::size_t cut = 0;
  while (cut < idx.size() && acc < target)
    acc += cloud.weights[static_cast<std::size_t>(idx[cut++])];
  cut = std::clamp<std::size_t>(cut, 1, idx.size() - 1);

  std::vector<int> left(idx.begin(),
                        idx.begin() + static_cast<std::ptrdiff_t>(cut));
  std::vector<int> right(idx.begin() + static_cast<std::ptrdiff_t>(cut),
                         idx.end());
  idx.clear();
  idx.shrink_to_fit();
  bisect(cloud, std::move(left), left_pieces, first_piece, piece_of);
  bisect(cloud, std::move(right), pieces - left_pieces,
         first_piece + left_pieces, piece_of);
}

}  // namespace

std::vector<int> ribSplit(const core::Mesh& mesh,
                          const std::vector<core::Ent>& elems, int pieces,
                          const std::vector<double>& weights) {
  if (pieces < 1)
    throw pcu::Error(pcu::ErrorCode::kValidation, -1,
                     "ribSplit wants pieces >= 1, got " +
                         std::to_string(pieces));
  if (!weights.empty() && weights.size() != elems.size())
    throw pcu::Error(pcu::ErrorCode::kValidation, -1,
                     "ribSplit weights length " +
                         std::to_string(weights.size()) +
                         " disagrees with element count " +
                         std::to_string(elems.size()));
  Cloud cloud;
  cloud.centroids.reserve(elems.size());
  for (core::Ent e : elems) {
    Vec3 c{};
    const auto vs = mesh.verts(e);
    for (core::Ent v : vs) c += mesh.point(v);
    if (!vs.empty()) c = c * (1.0 / static_cast<double>(vs.size()));
    cloud.centroids.push_back(c);
  }
  cloud.weights = weights.empty()
                      ? std::vector<double>(elems.size(), 1.0)
                      : weights;
  std::vector<int> piece_of(elems.size(), 0);
  std::vector<int> idx(elems.size());
  std::iota(idx.begin(), idx.end(), 0);
  bisect(cloud, std::move(idx), pieces, 0, piece_of);
  return piece_of;
}

}  // namespace part
