#ifndef PUMI_MESHGEN_BOXMESH_HPP
#define PUMI_MESHGEN_BOXMESH_HPP

/// \file boxmesh.hpp
/// \brief Structured box mesh generators (tri/quad/tet/hex) with full
/// geometric classification against a gmi box or rectangle model.
///
/// These are the synthetic mesh sources for tests and benches; hex cells
/// are optionally split into six tetrahedra with the Kuhn subdivision,
/// which is conforming across cells.

#include <memory>

#include "common/vec.hpp"
#include "core/mesh.hpp"
#include "gmi/model.hpp"

namespace meshgen {

/// A generated mesh bundled with the model it classifies against (the model
/// must outlive the mesh, so they travel together).
struct Generated {
  std::unique_ptr<gmi::Model> model;
  std::unique_ptr<core::Mesh> mesh;
};

/// nx*ny*nz grid of hex cells in [lo, hi], each split into 6 tets
/// (6*nx*ny*nz elements). Entities on the box surface are classified on the
/// matching model face/edge/vertex; interior entities on the model region.
Generated boxTets(int nx, int ny, int nz,
                  const common::Vec3& lo = {0, 0, 0},
                  const common::Vec3& hi = {1, 1, 1});

/// nx*ny*nz grid of hex elements.
Generated boxHexes(int nx, int ny, int nz,
                   const common::Vec3& lo = {0, 0, 0},
                   const common::Vec3& hi = {1, 1, 1});

/// 2D: nx*ny grid of quads in the z = lo.z plane, each split into 2
/// triangles (2*nx*ny elements), classified against a rectangle model.
Generated boxTris(int nx, int ny, const common::Vec3& lo = {0, 0, 0},
                  const common::Vec3& hi = {1, 1, 0});

/// 2D: nx*ny grid of quad elements.
Generated boxQuads(int nx, int ny, const common::Vec3& lo = {0, 0, 0},
                   const common::Vec3& hi = {1, 1, 0});

}  // namespace meshgen

#endif  // PUMI_MESHGEN_BOXMESH_HPP
