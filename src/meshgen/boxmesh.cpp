#include "meshgen/boxmesh.hpp"

#include <array>
#include <cassert>
#include <unordered_map>

#include "gmi/builders.hpp"

namespace meshgen {

using common::Vec3;
using core::Ent;
using core::EntHash;
using core::Mesh;
using core::Topo;

namespace {

/// Kuhn subdivision: the six path-simplices of a unit cube, as (x,y,z)
/// corner offsets. All share the main diagonal 000-111, so applying it
/// uniformly to every grid cell yields a conforming tetrahedralization.
constexpr int kKuhn[6][4][3] = {
    {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {1, 1, 1}},
    {{0, 0, 0}, {1, 0, 0}, {1, 0, 1}, {1, 1, 1}},
    {{0, 0, 0}, {0, 1, 0}, {1, 1, 0}, {1, 1, 1}},
    {{0, 0, 0}, {0, 1, 0}, {0, 1, 1}, {1, 1, 1}},
    {{0, 0, 0}, {0, 0, 1}, {1, 0, 1}, {1, 1, 1}},
    {{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {1, 1, 1}},
};

/// Map a sign triple (-1 fixed at lo, +1 fixed at hi, 0 free per axis) to
/// the 3D box model entity per the makeBox tag conventions.
gmi::Entity* boxModelEntity(const gmi::Model& model, int sx, int sy, int sz) {
  const int fixed = (sx != 0) + (sy != 0) + (sz != 0);
  if (fixed == 0) return model.find(3, 0);
  if (fixed == 1) {
    if (sz == -1) return model.find(2, 0);
    if (sz == +1) return model.find(2, 1);
    if (sy == -1) return model.find(2, 2);
    if (sx == +1) return model.find(2, 3);
    if (sy == +1) return model.find(2, 4);
    return model.find(2, 5);  // sx == -1
  }
  if (fixed == 2) {
    if (sz == -1) {
      if (sy == -1) return model.find(1, 0);
      if (sx == +1) return model.find(1, 1);
      if (sy == +1) return model.find(1, 2);
      return model.find(1, 3);  // sx == -1
    }
    if (sz == +1) {
      if (sy == -1) return model.find(1, 4);
      if (sx == +1) return model.find(1, 5);
      if (sy == +1) return model.find(1, 6);
      return model.find(1, 7);  // sx == -1
    }
    // Vertical edges: sz == 0.
    if (sx == -1 && sy == -1) return model.find(1, 8);
    if (sx == +1 && sy == -1) return model.find(1, 9);
    if (sx == +1 && sy == +1) return model.find(1, 10);
    return model.find(1, 11);  // sx == -1, sy == +1
  }
  // Corner: makeBox numbers the bottom ring 0..3 then the top ring 4..7.
  const int bottom[2][2] = {{0, 3}, {1, 2}};  // [x+][y+]
  const int c = bottom[sx == +1][sy == +1] + (sz == +1 ? 4 : 0);
  return model.find(0, c);
}

/// Same for the 2D rectangle model (sz ignored; mesh lives in a plane).
gmi::Entity* rectModelEntity(const gmi::Model& model, int sx, int sy) {
  const int fixed = (sx != 0) + (sy != 0);
  if (fixed == 0) return model.find(2, 0);
  if (fixed == 1) {
    if (sy == -1) return model.find(1, 0);
    if (sx == +1) return model.find(1, 1);
    if (sy == +1) return model.find(1, 2);
    return model.find(1, 3);
  }
  const int corner[2][2] = {{0, 3}, {1, 2}};
  return model.find(0, corner[sx == +1][sy == +1]);
}

/// Classify every entity of dimension < mesh dim whose vertices all sit on
/// a common box boundary feature. `index_of` maps vertices to grid triples.
template <typename ModelEntityFn>
void classifyBoundary(
    Mesh& mesh, int mesh_dim, int nx, int ny, int nz,
    const std::unordered_map<Ent, std::array<int, 3>, EntHash>& index_of,
    ModelEntityFn model_entity) {
  for (int d = 0; d < mesh_dim; ++d) {
    for (Ent e : mesh.entities(d)) {
      std::array<Ent, core::kMaxDown> vbuf{};
      const int nv = mesh.downward(e, 0, vbuf.data());
      // Per axis: -1 when all vertices at the low extreme, +1 at the high.
      int sign[3] = {0, 0, 0};
      const int extent[3] = {nx, ny, nz};
      for (int axis = 0; axis < 3; ++axis) {
        bool all_lo = true, all_hi = true;
        for (int i = 0; i < nv; ++i) {
          const int c = index_of.at(vbuf[static_cast<std::size_t>(i)])[
              static_cast<std::size_t>(axis)];
          all_lo = all_lo && (c == 0);
          all_hi = all_hi && (c == extent[axis]);
        }
        sign[axis] = all_lo ? -1 : (all_hi ? +1 : 0);
      }
      mesh.classify(e, model_entity(sign[0], sign[1], sign[2]));
    }
  }
}

struct Grid {
  std::vector<Ent> verts;
  std::unordered_map<Ent, std::array<int, 3>, EntHash> index_of;
  int nx, ny, nz;

  [[nodiscard]] Ent at(int i, int j, int k) const {
    return verts[static_cast<std::size_t>((k * (ny + 1) + j) * (nx + 1) + i)];
  }
};

Grid makeVertexGrid(Mesh& mesh, gmi::Entity* interior, int nx, int ny, int nz,
                    const Vec3& lo, const Vec3& hi) {
  Grid g;
  g.nx = nx;
  g.ny = ny;
  g.nz = nz;
  g.verts.reserve(static_cast<std::size_t>(nx + 1) * (ny + 1) * (nz + 1));
  for (int k = 0; k <= nz; ++k) {
    for (int j = 0; j <= ny; ++j) {
      for (int i = 0; i <= nx; ++i) {
        const Vec3 p{lo.x + (hi.x - lo.x) * (static_cast<double>(i) / nx),
                     lo.y + (hi.y - lo.y) * (static_cast<double>(j) / ny),
                     nz > 0 ? lo.z + (hi.z - lo.z) *
                                         (static_cast<double>(k) / nz)
                            : lo.z};
        const Ent v = mesh.createVertex(p, interior);
        g.index_of.emplace(v, std::array<int, 3>{i, j, k});
        g.verts.push_back(v);
      }
    }
  }
  return g;
}

}  // namespace

Generated boxTets(int nx, int ny, int nz, const Vec3& lo, const Vec3& hi) {
  assert(nx > 0 && ny > 0 && nz > 0);
  Generated out;
  out.model = gmi::makeBox(lo, hi);
  out.mesh = std::make_unique<Mesh>(out.model.get());
  gmi::Entity* region = out.model->find(3, 0);
  Grid g = makeVertexGrid(*out.mesh, region, nx, ny, nz, lo, hi);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        for (const auto& tet : kKuhn) {
          std::array<Ent, 4> vs{};
          for (int c = 0; c < 4; ++c)
            vs[static_cast<std::size_t>(c)] =
                g.at(i + tet[c][0], j + tet[c][1], k + tet[c][2]);
          out.mesh->buildElement(Topo::Tet, vs, region);
        }
      }
    }
  }
  classifyBoundary(*out.mesh, 3, nx, ny, nz, g.index_of,
                   [&](int sx, int sy, int sz) {
                     return boxModelEntity(*out.model, sx, sy, sz);
                   });
  return out;
}

Generated boxHexes(int nx, int ny, int nz, const Vec3& lo, const Vec3& hi) {
  assert(nx > 0 && ny > 0 && nz > 0);
  Generated out;
  out.model = gmi::makeBox(lo, hi);
  out.mesh = std::make_unique<Mesh>(out.model.get());
  gmi::Entity* region = out.model->find(3, 0);
  Grid g = makeVertexGrid(*out.mesh, region, nx, ny, nz, lo, hi);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const std::array<Ent, 8> vs{
            g.at(i, j, k),         g.at(i + 1, j, k),
            g.at(i + 1, j + 1, k), g.at(i, j + 1, k),
            g.at(i, j, k + 1),     g.at(i + 1, j, k + 1),
            g.at(i + 1, j + 1, k + 1), g.at(i, j + 1, k + 1)};
        out.mesh->buildElement(Topo::Hex, vs, region);
      }
    }
  }
  classifyBoundary(*out.mesh, 3, nx, ny, nz, g.index_of,
                   [&](int sx, int sy, int sz) {
                     return boxModelEntity(*out.model, sx, sy, sz);
                   });
  return out;
}

Generated boxTris(int nx, int ny, const Vec3& lo, const Vec3& hi) {
  assert(nx > 0 && ny > 0);
  Generated out;
  out.model = gmi::makeRect(lo, hi);
  out.mesh = std::make_unique<Mesh>(out.model.get());
  gmi::Entity* face = out.model->find(2, 0);
  Grid g = makeVertexGrid(*out.mesh, face, nx, ny, 0, lo, hi);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      // Split each cell along the (i,j)-(i+1,j+1) diagonal.
      const std::array<Ent, 3> t0{g.at(i, j, 0), g.at(i + 1, j, 0),
                                  g.at(i + 1, j + 1, 0)};
      const std::array<Ent, 3> t1{g.at(i, j, 0), g.at(i + 1, j + 1, 0),
                                  g.at(i, j + 1, 0)};
      out.mesh->buildElement(Topo::Tri, t0, face);
      out.mesh->buildElement(Topo::Tri, t1, face);
    }
  }
  classifyBoundary(*out.mesh, 2, nx, ny, 0, g.index_of,
                   [&](int sx, int sy, int) {
                     return rectModelEntity(*out.model, sx, sy);
                   });
  return out;
}

Generated boxQuads(int nx, int ny, const Vec3& lo, const Vec3& hi) {
  assert(nx > 0 && ny > 0);
  Generated out;
  out.model = gmi::makeRect(lo, hi);
  out.mesh = std::make_unique<Mesh>(out.model.get());
  gmi::Entity* face = out.model->find(2, 0);
  Grid g = makeVertexGrid(*out.mesh, face, nx, ny, 0, lo, hi);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const std::array<Ent, 4> vs{g.at(i, j, 0), g.at(i + 1, j, 0),
                                  g.at(i + 1, j + 1, 0), g.at(i, j + 1, 0)};
      out.mesh->buildElement(Topo::Quad, vs, face);
    }
  }
  classifyBoundary(*out.mesh, 2, nx, ny, 0, g.index_of,
                   [&](int sx, int sy, int) {
                     return rectModelEntity(*out.model, sx, sy);
                   });
  return out;
}

}  // namespace meshgen
