#include "meshgen/workloads.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "core/measure.hpp"
#include "gmi/builders.hpp"

namespace meshgen {

using common::Vec3;
using core::Ent;
using core::EntHash;
using core::Mesh;
using core::Topo;

namespace {

/// Square-to-disk map: (a, b) in [-1,1]^2 -> unit disk, smooth and
/// bijective (elliptical grid mapping).
void squareToDisk(double a, double b, double& x, double& y) {
  x = a * std::sqrt(1.0 - 0.5 * b * b);
  y = b * std::sqrt(1.0 - 0.5 * a * a);
}

constexpr int kKuhn[6][4][3] = {
    {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {1, 1, 1}},
    {{0, 0, 0}, {1, 0, 0}, {1, 0, 1}, {1, 1, 1}},
    {{0, 0, 0}, {0, 1, 0}, {1, 1, 0}, {1, 1, 1}},
    {{0, 0, 0}, {0, 1, 0}, {0, 1, 1}, {1, 1, 1}},
    {{0, 0, 0}, {0, 0, 1}, {1, 0, 1}, {1, 1, 1}},
    {{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {1, 1, 1}},
};

}  // namespace

Generated vessel(const VesselSpec& spec) {
  assert(spec.circumferential > 0 && spec.axial > 0);
  const int nc = spec.circumferential;
  const int nz = spec.axial;

  Generated out;
  out.model = gmi::makeCylinder(Vec3{0, 0, 0}, Vec3{0, 0, 1}, spec.radius,
                                spec.length);
  out.mesh = std::make_unique<Mesh>(out.model.get());
  gmi::Entity* region = out.model->find(3, 0);
  gmi::Entity* side = out.model->find(2, 0);
  gmi::Entity* cap_lo = out.model->find(2, 1);
  gmi::Entity* cap_hi = out.model->find(2, 2);
  gmi::Entity* rim_lo = out.model->find(1, 0);
  gmi::Entity* rim_hi = out.model->find(1, 1);

  // Vertex grid mapped from the (i, j, k) box onto the bulged, bowed tube.
  std::vector<Ent> verts(static_cast<std::size_t>(nc + 1) * (nc + 1) *
                         (nz + 1));
  std::unordered_map<Ent, std::array<int, 3>, EntHash> index_of;
  auto at = [&](int i, int j, int k) -> Ent& {
    return verts[static_cast<std::size_t>((k * (nc + 1) + j) * (nc + 1) + i)];
  };
  for (int k = 0; k <= nz; ++k) {
    const double t = static_cast<double>(k) / nz;  // axial fraction
    const double z = t * spec.length;
    // Aneurysm bulge: gaussian radial dilation around bulge_center.
    const double arg = (t - spec.bulge_center) / spec.bulge_width;
    const double r = spec.radius * (1.0 + spec.bulge * std::exp(-arg * arg));
    // Bowed centerline.
    const double cx = spec.bend * std::sin(M_PI * t);
    for (int j = 0; j <= nc; ++j) {
      for (int i = 0; i <= nc; ++i) {
        const double a = 2.0 * i / nc - 1.0;
        const double b = 2.0 * j / nc - 1.0;
        double dx, dy;
        squareToDisk(a, b, dx, dy);
        const Ent v =
            out.mesh->createVertex(Vec3{cx + r * dx, r * dy, z}, region);
        index_of.emplace(v, std::array<int, 3>{i, j, k});
        at(i, j, k) = v;
      }
    }
  }

  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < nc; ++j)
      for (int i = 0; i < nc; ++i)
        for (const auto& tet : kKuhn) {
          std::array<Ent, 4> vs{};
          for (int c = 0; c < 4; ++c)
            vs[static_cast<std::size_t>(c)] =
                at(i + tet[c][0], j + tet[c][1], k + tet[c][2]);
          out.mesh->buildElement(Topo::Tet, vs, region);
        }

  // Classification: wall = cross-section boundary; caps = axial extremes.
  std::array<Ent, core::kMaxDown> vbuf{};
  for (int d = 0; d < 3; ++d) {
    for (Ent e : out.mesh->entities(d)) {
      const int nv = out.mesh->downward(e, 0, vbuf.data());
      bool all_wall = true, all_lo = true, all_hi = true;
      for (int i = 0; i < nv; ++i) {
        const auto& idx = index_of.at(vbuf[static_cast<std::size_t>(i)]);
        const bool on_wall =
            idx[0] == 0 || idx[0] == nc || idx[1] == 0 || idx[1] == nc;
        all_wall = all_wall && on_wall;
        all_lo = all_lo && idx[2] == 0;
        all_hi = all_hi && idx[2] == nz;
      }
      gmi::Entity* cls = region;
      if (all_wall && all_lo) cls = rim_lo;
      else if (all_wall && all_hi) cls = rim_hi;
      else if (all_wall) cls = side;
      else if (all_lo) cls = cap_lo;
      else if (all_hi) cls = cap_hi;
      // Guard: a dim-d mesh entity cannot classify below dimension d.
      if (cls->dim() < d) cls = side;
      out.mesh->classify(e, cls);
    }
  }
  return out;
}

Generated wingBox(int n) {
  assert(n > 0);
  return boxTets(4 * n, 2 * n, n, Vec3{0, 0, 0}, Vec3{4, 2, 1});
}

void jiggle(core::Mesh& mesh, double fraction, common::Rng& rng) {
  const int dim = mesh.dim();
  for (Ent v : mesh.entities(0)) {
    gmi::Entity* cls = mesh.classification(v);
    if (cls != nullptr && cls->dim() < dim) continue;  // keep boundary fixed
    // Shortest incident edge bounds the safe perturbation.
    double h = 1e300;
    for (Ent e : mesh.up(v)) h = std::min(h, core::measure(mesh, e));
    if (h == 1e300) continue;
    const double s = fraction * h;
    const Vec3 p = mesh.point(v);
    // 2D meshes stay in their plane (perturbing z would fold them out).
    const double dz = dim == 3 ? rng.uniform(-s, s) : 0.0;
    mesh.setPoint(v, Vec3{p.x + rng.uniform(-s, s), p.y + rng.uniform(-s, s),
                          p.z + dz});
  }
}

}  // namespace meshgen
