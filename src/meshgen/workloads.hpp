#ifndef PUMI_MESHGEN_WORKLOADS_HPP
#define PUMI_MESHGEN_WORKLOADS_HPP

/// \file workloads.hpp
/// \brief Synthetic stand-ins for the paper's evaluation geometries.
///
/// The paper's ParMA tests run on a 133M-element abdominal aortic aneurysm
/// (AAA) mesh and a supersonic ONERA M6 wing case. Neither mesh is public;
/// these generators produce parametric surrogates with the features that
/// matter to the experiments: an irregular tubular domain with a bulge
/// (vessel) and a swept-wing-proportioned box domain for the shock
/// adaptation histogram. See DESIGN.md ("Substitutions").

#include "common/rng.hpp"
#include "meshgen/boxmesh.hpp"

namespace meshgen {

struct VesselSpec {
  int circumferential = 8;  ///< grid cells across the tube cross-section
  int axial = 40;           ///< grid cells along the vessel
  double radius = 1.0;      ///< nominal tube radius
  double length = 10.0;     ///< vessel length
  double bulge = 1.2;       ///< aneurysm amplitude (fraction of radius)
  double bulge_center = 0.55;  ///< bulge position (fraction of length)
  double bulge_width = 0.12;   ///< bulge gaussian width (fraction of length)
  double bend = 0.6;        ///< centerline lateral bow amplitude
};

/// Tetrahedral mesh of a bowed tube with a mid-length aneurysm bulge,
/// classified against a gmi cylinder model (side wall, two caps, two rims).
/// Element count: 6 * circumferential^2 * axial.
Generated vessel(const VesselSpec& spec = {});

/// Tetrahedral box mesh with swept-wing proportions (4n x 2n x n cells over
/// [0,4] x [0,2] x [0,1]); the shock-front size field for Fig. 13 is applied
/// by the adapt module.
Generated wingBox(int n);

/// Randomly perturb interior vertices by `fraction` of their shortest
/// incident edge, deterministically from `rng`. Small fractions (< 0.3)
/// keep element volumes positive.
void jiggle(core::Mesh& mesh, double fraction, common::Rng& rng);

}  // namespace meshgen

#endif  // PUMI_MESHGEN_WORKLOADS_HPP
