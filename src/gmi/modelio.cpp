#include "gmi/modelio.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gmi {

void writeModel(const Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeModel: cannot open " + path);
  out << "pumi-model 1\n";
  for (int d = 0; d <= 3; ++d) out << model.count(d) << (d < 3 ? " " : "\n");
  for (int d = 0; d <= 3; ++d) {
    for (const auto& e : model.entities(d)) {
      out << d << " " << e->tag() << " " << e->boundary().size();
      for (Entity* b : e->boundary()) out << " " << b->tag();
      out << "\n";
      out << (e->shape() ? e->shape()->serialize() : std::string("none"))
          << "\n";
    }
  }
  if (!out) throw std::runtime_error("writeModel: write failed: " + path);
}

std::unique_ptr<Model> readModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readModel: cannot open " + path);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "pumi-model" || version != 1)
    throw std::runtime_error("readModel: not a pumi model file: " + path);
  std::size_t counts[4];
  for (auto& c : counts) in >> c;
  in.ignore();  // rest of the counts line

  auto model = std::make_unique<Model>();
  for (int d = 0; d <= 3; ++d) {
    for (std::size_t i = 0; i < counts[d]; ++i) {
      std::string header;
      if (!std::getline(in, header))
        throw std::runtime_error("readModel: truncated file: " + path);
      std::istringstream hs(header);
      int dim = -1, tag = -1;
      std::size_t nb = 0;
      hs >> dim >> tag >> nb;
      if (dim != d)
        throw std::runtime_error("readModel: entity out of dimension order");
      Entity* e = model->create(dim, tag);
      for (std::size_t b = 0; b < nb; ++b) {
        int btag = -1;
        hs >> btag;
        Entity* lower = model->find(dim - 1, btag);
        if (lower == nullptr)
          throw std::runtime_error("readModel: dangling boundary tag");
        Model::addAdjacency(e, lower);
      }
      std::string shape_line;
      if (!std::getline(in, shape_line))
        throw std::runtime_error("readModel: missing shape line");
      if (auto shape = parseShape(shape_line)) e->setShape(std::move(shape));
    }
  }
  model->check();
  return model;
}

}  // namespace gmi
