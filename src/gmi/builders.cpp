#include "gmi/builders.hpp"

#include <array>

namespace gmi {

using common::Vec3;

std::unique_ptr<Model> makeBox(const Vec3& lo, const Vec3& hi) {
  auto model = std::make_unique<Model>();

  // Corner positions; corner c has bits (i, j, k) per the header comment.
  const std::array<Vec3, 8> corner = {
      Vec3{lo.x, lo.y, lo.z}, Vec3{hi.x, lo.y, lo.z}, Vec3{hi.x, hi.y, lo.z},
      Vec3{lo.x, hi.y, lo.z}, Vec3{lo.x, lo.y, hi.z}, Vec3{hi.x, lo.y, hi.z},
      Vec3{hi.x, hi.y, hi.z}, Vec3{lo.x, hi.y, hi.z}};
  // Note: corners are numbered around the bottom ring then the top ring
  // (hex-element convention), not by coordinate bits.

  std::array<Entity*, 8> v{};
  for (int c = 0; c < 8; ++c) {
    v[c] = model->create(0, c);
    v[c]->setShape(std::make_unique<PointShape>(corner[c]));
  }

  // Edge endpoints: bottom ring, top ring, verticals.
  constexpr std::array<std::array<int, 2>, 12> edge_verts = {{
      {0, 1}, {1, 2}, {2, 3}, {3, 0},  // bottom ring e0..e3
      {4, 5}, {5, 6}, {6, 7}, {7, 4},  // top ring    e4..e7
      {0, 4}, {1, 5}, {2, 6}, {3, 7},  // verticals   e8..e11
  }};
  std::array<Entity*, 12> e{};
  for (int i = 0; i < 12; ++i) {
    e[i] = model->create(1, i);
    const auto [a, b] = edge_verts[i];
    e[i]->setShape(std::make_unique<SegmentShape>(corner[a], corner[b]));
    Model::addAdjacency(e[i], v[a]);
    Model::addAdjacency(e[i], v[b]);
  }

  // Faces: bounding edges and a plane patch (origin corner, two spans).
  struct FaceSpec {
    std::array<int, 4> edges;
    int origin;  // corner index
    int du_to;   // corner reached by the u span
    int dv_to;   // corner reached by the v span
  };
  constexpr std::array<FaceSpec, 6> faces = {{
      {{0, 1, 2, 3}, 0, 1, 3},     // f0 bottom (z-)
      {{4, 5, 6, 7}, 4, 5, 7},     // f1 top (z+)
      {{0, 9, 4, 8}, 0, 1, 4},     // f2 front (y-)
      {{1, 10, 5, 9}, 1, 2, 5},    // f3 right (x+)
      {{2, 11, 6, 10}, 2, 3, 6},   // f4 back (y+)
      {{3, 8, 7, 11}, 3, 0, 7},    // f5 left (x-)
  }};
  std::array<Entity*, 6> f{};
  for (int i = 0; i < 6; ++i) {
    f[i] = model->create(2, i);
    const auto& spec = faces[i];
    f[i]->setShape(std::make_unique<PlaneShape>(
        corner[spec.origin], corner[spec.du_to] - corner[spec.origin],
        corner[spec.dv_to] - corner[spec.origin]));
    for (int ei : spec.edges) Model::addAdjacency(f[i], e[ei]);
  }

  Entity* region = model->create(3, 0);
  for (Entity* face : f) Model::addAdjacency(region, face);

  model->check();
  return model;
}

std::unique_ptr<Model> makeUnitCube() {
  return makeBox(Vec3{0, 0, 0}, Vec3{1, 1, 1});
}

std::unique_ptr<Model> makeRect(const Vec3& lo, const Vec3& hi) {
  auto model = std::make_unique<Model>();
  const std::array<Vec3, 4> corner = {
      Vec3{lo.x, lo.y, lo.z}, Vec3{hi.x, lo.y, lo.z}, Vec3{hi.x, hi.y, lo.z},
      Vec3{lo.x, hi.y, lo.z}};
  std::array<Entity*, 4> v{};
  for (int c = 0; c < 4; ++c) {
    v[c] = model->create(0, c);
    v[c]->setShape(std::make_unique<PointShape>(corner[c]));
  }
  constexpr std::array<std::array<int, 2>, 4> edge_verts = {
      {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  std::array<Entity*, 4> e{};
  for (int i = 0; i < 4; ++i) {
    e[i] = model->create(1, i);
    const auto [a, b] = edge_verts[i];
    e[i]->setShape(std::make_unique<SegmentShape>(corner[a], corner[b]));
    Model::addAdjacency(e[i], v[a]);
    Model::addAdjacency(e[i], v[b]);
  }
  Entity* face = model->create(2, 0);
  face->setShape(std::make_unique<PlaneShape>(corner[0], corner[1] - corner[0],
                                              corner[3] - corner[0]));
  for (Entity* edge : e) Model::addAdjacency(face, edge);
  model->check();
  return model;
}

std::unique_ptr<Model> makeCylinder(const Vec3& base, const Vec3& axis,
                                    double radius, double height) {
  auto model = std::make_unique<Model>();
  const Vec3 dir = common::normalized(axis);
  const Vec3 top = base + dir * height;

  // Circular rim edges (closed loops: no model vertices).
  Entity* rim_bottom = model->create(1, 0);
  Entity* rim_top = model->create(1, 1);
  // Reuse the cylinder shape truncated to zero height as a circle surrogate:
  // snapping onto it lands on the rim circle.
  rim_bottom->setShape(
      std::make_unique<CylinderShape>(base, dir, radius, 0.0));
  rim_top->setShape(std::make_unique<CylinderShape>(top, dir, radius, 0.0));

  Entity* side = model->create(2, 0);
  side->setShape(std::make_unique<CylinderShape>(base, dir, radius, height));
  Entity* cap_bottom = model->create(2, 1);
  Entity* cap_top = model->create(2, 2);
  // Plane patches spanning the cap disks (frame from the cylinder eval).
  const Vec3 seed = std::fabs(dir.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  const Vec3 e1 = common::normalized(common::cross(dir, seed));
  const Vec3 e2 = common::cross(dir, e1);
  cap_bottom->setShape(std::make_unique<PlaneShape>(
      base - e1 * radius - e2 * radius, e1 * (2 * radius), e2 * (2 * radius)));
  cap_top->setShape(std::make_unique<PlaneShape>(
      top - e1 * radius - e2 * radius, e1 * (2 * radius), e2 * (2 * radius)));

  Model::addAdjacency(side, rim_bottom);
  Model::addAdjacency(side, rim_top);
  Model::addAdjacency(cap_bottom, rim_bottom);
  Model::addAdjacency(cap_top, rim_top);

  Entity* region = model->create(3, 0);
  Model::addAdjacency(region, side);
  Model::addAdjacency(region, cap_bottom);
  Model::addAdjacency(region, cap_top);

  model->check();
  return model;
}

std::unique_ptr<Model> makeSphere(const Vec3& center, double radius) {
  auto model = std::make_unique<Model>();
  Entity* face = model->create(2, 0);
  face->setShape(std::make_unique<SphereShape>(center, radius));
  Entity* region = model->create(3, 0);
  Model::addAdjacency(region, face);
  model->check();
  return model;
}

}  // namespace gmi
