#ifndef PUMI_GMI_SHAPES_HPP
#define PUMI_GMI_SHAPES_HPP

/// \file shapes.hpp
/// \brief Analytic shapes backing geometric model entities.
///
/// PUMI interrogates the geometric model through a functional interface for
/// "geometric information about the shape of the entities" (paper Sec. II).
/// In place of a CAD kernel we provide analytic shapes — points, lines,
/// planes, cylinders, spheres — supporting the three queries adaptive
/// meshing needs: closest-point projection (snap), outward normal, and
/// parametric evaluation.

#include <memory>
#include <string>

#include "common/vec.hpp"

namespace gmi {

using common::Vec3;

/// Abstract shape of a model entity.
class Shape {
 public:
  virtual ~Shape() = default;

  /// Closest point on the shape to `near` (used to snap refined boundary
  /// vertices back onto curved geometry).
  [[nodiscard]] virtual Vec3 snap(const Vec3& near) const = 0;

  /// Unit normal at a point on the shape (meaningful for 2D shapes; the
  /// default returns zero).
  [[nodiscard]] virtual Vec3 normal(const Vec3& at) const;

  /// Evaluate parametric coordinates: (u) for curves, (u,v) for surfaces.
  [[nodiscard]] virtual Vec3 eval(double u, double v) const = 0;

  /// One-line textual form ("sphere cx cy cz r") for model persistence;
  /// parseShape inverts it.
  [[nodiscard]] virtual std::string serialize() const = 0;
};

/// Parse a shape serialized by Shape::serialize(); nullptr for "none",
/// throws std::invalid_argument on malformed input.
std::unique_ptr<Shape> parseShape(const std::string& text);

/// A 0-dimensional shape: a fixed location.
class PointShape final : public Shape {
 public:
  explicit PointShape(const Vec3& p) : p_(p) {}
  [[nodiscard]] Vec3 snap(const Vec3&) const override { return p_; }
  [[nodiscard]] Vec3 eval(double, double) const override { return p_; }
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] const Vec3& location() const { return p_; }

 private:
  Vec3 p_;
};

/// A straight segment from a to b; u in [0,1] parameterizes it.
class SegmentShape final : public Shape {
 public:
  SegmentShape(const Vec3& a, const Vec3& b) : a_(a), b_(b) {}
  [[nodiscard]] Vec3 snap(const Vec3& near) const override;
  [[nodiscard]] Vec3 eval(double u, double) const override {
    return a_ + (b_ - a_) * u;
  }
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] double length() const { return common::distance(a_, b_); }

 private:
  Vec3 a_, b_;
};

/// A bounded plane patch: origin + u*du + v*dv, (u,v) in [0,1]^2,
/// with snapping clamped to the patch.
class PlaneShape final : public Shape {
 public:
  PlaneShape(const Vec3& origin, const Vec3& du, const Vec3& dv)
      : origin_(origin), du_(du), dv_(dv) {}
  [[nodiscard]] Vec3 snap(const Vec3& near) const override;
  [[nodiscard]] Vec3 normal(const Vec3& at) const override;
  [[nodiscard]] Vec3 eval(double u, double v) const override {
    return origin_ + du_ * u + dv_ * v;
  }
  [[nodiscard]] std::string serialize() const override;

 private:
  Vec3 origin_, du_, dv_;
};

/// An infinite-cylinder side surface of given axis and radius, truncated to
/// axial extent [z0, z1] along the axis direction for snapping.
class CylinderShape final : public Shape {
 public:
  CylinderShape(const Vec3& base, const Vec3& axis, double radius,
                double height)
      : base_(base), axis_(common::normalized(axis)), radius_(radius),
        height_(height) {}
  [[nodiscard]] Vec3 snap(const Vec3& near) const override;
  [[nodiscard]] Vec3 normal(const Vec3& at) const override;
  /// u in [0, 2*pi) angular, v in [0, 1] axial.
  [[nodiscard]] Vec3 eval(double u, double v) const override;
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] double radius() const { return radius_; }

 private:
  /// Two unit vectors orthogonal to the axis.
  void frame(Vec3& e1, Vec3& e2) const;
  Vec3 base_, axis_;
  double radius_, height_;
};

/// A sphere surface.
class SphereShape final : public Shape {
 public:
  SphereShape(const Vec3& center, double radius)
      : center_(center), radius_(radius) {}
  [[nodiscard]] Vec3 snap(const Vec3& near) const override;
  [[nodiscard]] Vec3 normal(const Vec3& at) const override;
  /// u in [0, 2*pi) azimuthal, v in [0, pi] polar.
  [[nodiscard]] Vec3 eval(double u, double v) const override;
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] double radius() const { return radius_; }
  [[nodiscard]] const Vec3& center() const { return center_; }

 private:
  Vec3 center_;
  double radius_;
};

}  // namespace gmi

#endif  // PUMI_GMI_SHAPES_HPP
