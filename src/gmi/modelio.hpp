#ifndef PUMI_GMI_MODELIO_HPP
#define PUMI_GMI_MODELIO_HPP

/// \file modelio.hpp
/// \brief Geometric model persistence (the role of PUMI's .dmg files):
/// a text format recording every model entity, the adjacency graph, and
/// the analytic shape parameters, so a mesh file (core/meshio) can be
/// re-classified against the identical model in a later session.

#include <memory>
#include <string>

#include "gmi/model.hpp"

namespace gmi {

/// Write `model` to `path`. Shapes of the five analytic kinds (point,
/// segment, plane, cylinder, sphere) round-trip; entities without shapes
/// stay shapeless. Throws std::runtime_error on I/O failure.
void writeModel(const Model& model, const std::string& path);

/// Read a model written by writeModel. Throws std::runtime_error on I/O
/// failure or malformed content.
std::unique_ptr<Model> readModel(const std::string& path);

}  // namespace gmi

#endif  // PUMI_GMI_MODELIO_HPP
