#include "gmi/shapes.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gmi {

Vec3 Shape::normal(const Vec3&) const { return Vec3{}; }

Vec3 SegmentShape::snap(const Vec3& near) const {
  const Vec3 d = b_ - a_;
  const double len2 = common::norm2(d);
  if (len2 == 0.0) return a_;
  const double t = std::clamp(common::dot(near - a_, d) / len2, 0.0, 1.0);
  return a_ + d * t;
}

Vec3 PlaneShape::snap(const Vec3& near) const {
  const double lu2 = common::norm2(du_);
  const double lv2 = common::norm2(dv_);
  const Vec3 r = near - origin_;
  const double u = lu2 > 0.0 ? std::clamp(common::dot(r, du_) / lu2, 0.0, 1.0) : 0.0;
  const double v = lv2 > 0.0 ? std::clamp(common::dot(r, dv_) / lv2, 0.0, 1.0) : 0.0;
  return eval(u, v);
}

Vec3 PlaneShape::normal(const Vec3&) const {
  return common::normalized(common::cross(du_, dv_));
}

void CylinderShape::frame(Vec3& e1, Vec3& e2) const {
  // Pick any vector not parallel to the axis to seed the frame.
  const Vec3 seed = std::fabs(axis_.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  e1 = common::normalized(common::cross(axis_, seed));
  e2 = common::cross(axis_, e1);
}

Vec3 CylinderShape::snap(const Vec3& near) const {
  const Vec3 r = near - base_;
  const double h = std::clamp(common::dot(r, axis_), 0.0, height_);
  const Vec3 radial = r - axis_ * common::dot(r, axis_);
  const double rn = common::norm(radial);
  Vec3 dir;
  if (rn > 1e-300) {
    dir = radial / rn;
  } else {
    Vec3 e1, e2;
    frame(e1, e2);
    dir = e1;
  }
  return base_ + axis_ * h + dir * radius_;
}

Vec3 CylinderShape::normal(const Vec3& at) const {
  const Vec3 r = at - base_;
  return common::normalized(r - axis_ * common::dot(r, axis_));
}

Vec3 CylinderShape::eval(double u, double v) const {
  Vec3 e1, e2;
  frame(e1, e2);
  return base_ + axis_ * (v * height_) +
         (e1 * std::cos(u) + e2 * std::sin(u)) * radius_;
}

Vec3 SphereShape::snap(const Vec3& near) const {
  const Vec3 r = near - center_;
  const double n = common::norm(r);
  if (n < 1e-300) return center_ + Vec3{radius_, 0, 0};
  return center_ + r * (radius_ / n);
}

Vec3 SphereShape::normal(const Vec3& at) const {
  return common::normalized(at - center_);
}

Vec3 SphereShape::eval(double u, double v) const {
  return center_ + Vec3{radius_ * std::cos(u) * std::sin(v),
                        radius_ * std::sin(u) * std::sin(v),
                        radius_ * std::cos(v)};
}

}  // namespace gmi

namespace gmi {

namespace {

std::string vec(const Vec3& v) {
  std::ostringstream os;
  os.precision(17);
  os << v.x << " " << v.y << " " << v.z;
  return os.str();
}

Vec3 readVec(std::istringstream& is) {
  Vec3 v;
  is >> v.x >> v.y >> v.z;
  return v;
}

}  // namespace

std::string PointShape::serialize() const { return "point " + vec(p_); }

std::string SegmentShape::serialize() const {
  return "segment " + vec(a_) + " " + vec(b_);
}

std::string PlaneShape::serialize() const {
  return "plane " + vec(origin_) + " " + vec(du_) + " " + vec(dv_);
}

std::string CylinderShape::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "cylinder " << vec(base_) << " " << vec(axis_) << " " << radius_
     << " " << height_;
  return os.str();
}

std::string SphereShape::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "sphere " << vec(center_) << " " << radius_;
  return os.str();
}

std::unique_ptr<Shape> parseShape(const std::string& text) {
  std::istringstream is(text);
  std::string kind;
  is >> kind;
  if (kind.empty() || kind == "none") return nullptr;
  if (kind == "point") return std::make_unique<PointShape>(readVec(is));
  if (kind == "segment") {
    const Vec3 a = readVec(is);
    const Vec3 b = readVec(is);
    return std::make_unique<SegmentShape>(a, b);
  }
  if (kind == "plane") {
    const Vec3 o = readVec(is);
    const Vec3 du = readVec(is);
    const Vec3 dv = readVec(is);
    return std::make_unique<PlaneShape>(o, du, dv);
  }
  if (kind == "cylinder") {
    const Vec3 base = readVec(is);
    const Vec3 axis = readVec(is);
    double r = 0.0, h = 0.0;
    is >> r >> h;
    return std::make_unique<CylinderShape>(base, axis, r, h);
  }
  if (kind == "sphere") {
    const Vec3 c = readVec(is);
    double r = 0.0;
    is >> r;
    return std::make_unique<SphereShape>(c, r);
  }
  throw std::invalid_argument("parseShape: unknown shape kind: " + kind);
}

}  // namespace gmi
