#ifndef PUMI_GMI_MODEL_HPP
#define PUMI_GMI_MODEL_HPP

/// \file model.hpp
/// \brief Non-manifold boundary-representation geometric model.
///
/// The geometric model is the high-level, mesh-independent definition of the
/// domain (paper Sec. II). PUMI interacts with it through a functional
/// interface supporting (a) adjacency interrogation between model entities
/// and (b) shape interrogation. Model entities are vertices (0), edges (1),
/// faces (2) and regions (3); mesh entities carry a *geometric
/// classification* pointing at the highest-dimension model entity they
/// partly represent.

#include <array>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/tag.hpp"
#include "common/vec.hpp"
#include "gmi/shapes.hpp"

namespace gmi {

class Model;

/// One topological entity of the geometric model.
class Entity {
 public:
  Entity(int dim, int tag) : dim_(dim), tag_(tag) {}
  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] int tag() const { return tag_; }

  /// Entities of dimension dim-1 on this entity's boundary.
  [[nodiscard]] const std::vector<Entity*>& boundary() const { return down_; }
  /// Entities of dimension dim+1 bounded by this entity.
  [[nodiscard]] const std::vector<Entity*>& bounded() const { return up_; }

  /// All adjacent entities of an arbitrary dimension, found by traversal of
  /// the stored one-level adjacencies. Complexity is local (independent of
  /// model size).
  [[nodiscard]] std::vector<Entity*> adjacent(int target_dim) const;

  [[nodiscard]] const Shape* shape() const { return shape_.get(); }
  void setShape(std::unique_ptr<Shape> s) { shape_ = std::move(s); }

  /// Snap a point onto this entity's shape; identity when no shape is set.
  [[nodiscard]] common::Vec3 snap(const common::Vec3& near) const {
    return shape_ ? shape_->snap(near) : near;
  }

 private:
  friend class Model;
  int dim_;
  int tag_;
  std::vector<Entity*> down_;
  std::vector<Entity*> up_;
  std::unique_ptr<Shape> shape_;
};

/// The geometric model: owns entities, resolves (dim, tag) lookups, and
/// carries a Tag registry for user data on model entities.
class Model {
 public:
  using Tag = common::TagRegistry<Entity*>::Tag;

  Model() = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Create an entity with a caller-chosen tag, unique within its dimension.
  Entity* create(int dim, int tag);
  /// Create an entity with the next free tag in its dimension.
  Entity* create(int dim);

  /// Record that `lower` (dim d) bounds `upper` (dim d+1).
  static void addAdjacency(Entity* upper, Entity* lower);

  /// Find by (dim, tag); nullptr when absent.
  [[nodiscard]] Entity* find(int dim, int tag) const;

  [[nodiscard]] std::size_t count(int dim) const;
  [[nodiscard]] const std::vector<std::unique_ptr<Entity>>& entities(
      int dim) const {
    return entities_.at(static_cast<std::size_t>(dim));
  }

  /// Highest entity dimension present (a 2D model has no regions).
  [[nodiscard]] int dim() const;

  [[nodiscard]] common::TagRegistry<Entity*>& tags() { return tags_; }

  /// Structural validation: adjacency symmetry, dimension steps of one,
  /// unique tags. Throws std::logic_error with a description on failure.
  void check() const;

 private:
  std::array<std::vector<std::unique_ptr<Entity>>, 4> entities_;
  common::TagRegistry<Entity*> tags_;
};

}  // namespace gmi

#endif  // PUMI_GMI_MODEL_HPP
