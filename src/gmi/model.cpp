#include "gmi/model.hpp"

#include <algorithm>
#include <unordered_set>

namespace gmi {

std::vector<Entity*> Entity::adjacent(int target_dim) const {
  if (target_dim == dim_) return {const_cast<Entity*>(this)};
  std::vector<Entity*> current{const_cast<Entity*>(this)};
  int d = dim_;
  const int step = target_dim < dim_ ? -1 : +1;
  while (d != target_dim) {
    std::vector<Entity*> next;
    std::unordered_set<Entity*> seen;
    for (Entity* e : current) {
      const auto& link = step < 0 ? e->down_ : e->up_;
      for (Entity* n : link)
        if (seen.insert(n).second) next.push_back(n);
    }
    current = std::move(next);
    d += step;
  }
  return current;
}

Entity* Model::create(int dim, int tag) {
  if (dim < 0 || dim > 3) throw std::invalid_argument("model dim out of range");
  if (find(dim, tag) != nullptr)
    throw std::invalid_argument("duplicate model tag " + std::to_string(tag) +
                                " in dim " + std::to_string(dim));
  auto e = std::make_unique<Entity>(dim, tag);
  Entity* raw = e.get();
  entities_[static_cast<std::size_t>(dim)].push_back(std::move(e));
  return raw;
}

Entity* Model::create(int dim) {
  int tag = 0;
  for (const auto& e : entities_.at(static_cast<std::size_t>(dim)))
    tag = std::max(tag, e->tag() + 1);
  return create(dim, tag);
}

void Model::addAdjacency(Entity* upper, Entity* lower) {
  if (upper->dim() != lower->dim() + 1)
    throw std::invalid_argument("adjacency must link dim d+1 to dim d");
  if (std::find(upper->down_.begin(), upper->down_.end(), lower) !=
      upper->down_.end())
    return;  // already linked
  upper->down_.push_back(lower);
  lower->up_.push_back(upper);
}

Entity* Model::find(int dim, int tag) const {
  if (dim < 0 || dim > 3) return nullptr;
  for (const auto& e : entities_[static_cast<std::size_t>(dim)])
    if (e->tag() == tag) return e.get();
  return nullptr;
}

std::size_t Model::count(int dim) const {
  return entities_.at(static_cast<std::size_t>(dim)).size();
}

int Model::dim() const {
  for (int d = 3; d >= 0; --d)
    if (!entities_[static_cast<std::size_t>(d)].empty()) return d;
  return -1;
}

void Model::check() const {
  for (int d = 0; d <= 3; ++d) {
    for (const auto& e : entities_[static_cast<std::size_t>(d)]) {
      for (Entity* lower : e->boundary()) {
        if (lower->dim() != d - 1)
          throw std::logic_error("model boundary entity has wrong dimension");
        if (std::find(lower->bounded().begin(), lower->bounded().end(),
                      e.get()) == lower->bounded().end())
          throw std::logic_error("model adjacency not symmetric (down)");
      }
      for (Entity* upper : e->bounded()) {
        if (upper->dim() != d + 1)
          throw std::logic_error("model bounded entity has wrong dimension");
        if (std::find(upper->boundary().begin(), upper->boundary().end(),
                      e.get()) == upper->boundary().end())
          throw std::logic_error("model adjacency not symmetric (up)");
      }
    }
  }
}

}  // namespace gmi
