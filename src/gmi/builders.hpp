#ifndef PUMI_GMI_BUILDERS_HPP
#define PUMI_GMI_BUILDERS_HPP

/// \file builders.hpp
/// \brief Constructors for the analytic geometric models used in the
/// reproduction (the stand-ins for CAD input).

#include <memory>

#include "common/vec.hpp"
#include "gmi/model.hpp"

namespace gmi {

/// Full boundary representation of the axis-aligned box [lo, hi]:
/// 8 vertices, 12 edges, 6 faces, 1 region with complete adjacency and
/// analytic shapes (points, segments, plane patches).
///
/// Tag conventions (deterministic):
///   vertices 0..7  — corner (i,j,k) bits: tag = i + 2j + 4k grid corner
///   edges    0..11 — 0-3 bottom ring, 4-7 top ring, 8-11 verticals
///   faces    0..5  — 0 bottom(z-), 1 top(z+), 2 front(y-), 3 right(x+),
///                    4 back(y+), 5 left(x-)
///   region   0
std::unique_ptr<Model> makeBox(const common::Vec3& lo, const common::Vec3& hi);

/// Unit cube [0,1]^3.
std::unique_ptr<Model> makeUnitCube();

/// 2D boundary representation of the rectangle [lo, hi] in the z = lo.z
/// plane: 4 vertices (tags 0..3 counter-clockwise from lo), 4 edges
/// (tags: 0 bottom y-, 1 right x+, 2 top y+, 3 left x-), 1 face (tag 0).
std::unique_ptr<Model> makeRect(const common::Vec3& lo, const common::Vec3& hi);

/// A capped cylinder of given base center, axis direction, radius and
/// height: 1 region, 3 faces (tags: 0 side, 1 bottom cap, 2 top cap),
/// 2 circular edges (0 bottom, 1 top), no vertices (closed circles).
/// Used as the vessel-wall surrogate for the AAA workload.
std::unique_ptr<Model> makeCylinder(const common::Vec3& base,
                                    const common::Vec3& axis, double radius,
                                    double height);

/// Minimal closed model: 1 region bounded by 1 spherical face (tag 0 each).
/// Used when a mesh of an arbitrary closed domain only needs interior /
/// boundary classification.
std::unique_ptr<Model> makeSphere(const common::Vec3& center, double radius);

}  // namespace gmi

#endif  // PUMI_GMI_BUILDERS_HPP
