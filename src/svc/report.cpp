#include "svc/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace svc {

/// JSON string escaping for the tenant names and shed reasons (the latter
/// quote job names, e.g. `preempted by high-priority "ops/urgent"`).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const TenantStats* Report::tenant(const std::string& name) const {
  for (const auto& t : tenants)
    if (t.tenant == name) return &t;
  return nullptr;
}

double percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = pct / 100.0 * static_cast<double>(samples.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;  // nearest-rank: ceil(p/100 * N)-th sample, 1-based
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

void accumulate(TenantStats& stats, const JobResult& result) {
  switch (result.state) {
    case JobState::kCompleted: ++stats.completed; break;
    case JobState::kRejected: ++stats.rejected; break;
    case JobState::kShed: ++stats.shed; break;
    case JobState::kFailed: ++stats.failed; break;
  }
  stats.failovers += result.failovers;
  stats.faults_recovered += result.faults_recovered;
  stats.retries += result.retries;
  stats.integrity_repairs += result.integrity_repairs;
  stats.integrity_flips += result.integrity_flips;
  if (result.packed) ++stats.packed;
}

void Report::writeJson(std::ostream& os) const {
  os << "{\n  \"pool_size\": " << pool_size
     << ",\n  \"ranks_dead\": " << ranks_dead
     << ",\n  \"queue_capacity\": " << queue_capacity
     << ",\n  \"peak_queue_depth\": " << peak_queue_depth
     << ",\n  \"tenants\": {";
  bool first = true;
  for (const auto& t : tenants) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(t.tenant) << "\": {"
       << "\"completed\": " << t.completed << ", \"rejected\": " << t.rejected
       << ", \"shed\": " << t.shed << ", \"failed\": " << t.failed
       << ", \"failovers\": " << t.failovers
       << ", \"faults_recovered\": " << t.faults_recovered
       << ", \"retries\": " << t.retries << ", \"packed\": " << t.packed
       << ", \"integrity_repairs\": " << t.integrity_repairs
       << ", \"integrity_flips\": " << t.integrity_flips
       << ", \"p50_ms\": " << t.p50_ms << ", \"p99_ms\": " << t.p99_ms
       << ", \"mean_ms\": " << t.mean_ms << ", \"max_ms\": " << t.max_ms
       << "}";
    first = false;
  }
  os << "\n  },\n  \"shed_jobs\": [";
  first = true;
  for (const auto& s : shed_jobs) {
    os << (first ? "" : ", ") << "\"" << jsonEscape(s) << "\"";
    first = false;
  }
  os << "]\n}\n";
}

}  // namespace svc
