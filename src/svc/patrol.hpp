#ifndef PUMI_SVC_PATROL_HPP
#define PUMI_SVC_PATROL_HPP

/// \file patrol.hpp
/// \brief Background integrity patrol: scrubs idle meshes between jobs.
///
/// The armor (dist/integrity.hpp) audits at operation boundaries — but a
/// mesh sitting idle between jobs crosses no boundaries, so a bit flipped
/// while it waits would only surface at its *next* operation. The patrol
/// closes that window: a single background thread walks the registered
/// meshes on a fixed cadence and runs the armor's audit-and-repair pass on
/// any mesh it can prove idle (its owner's guard mutex is free).
///
/// Owners hold the guard whenever an operation is mutating the mesh; the
/// patrol only ever try-locks, so it never delays real work — a busy mesh
/// is simply skipped until the next sweep. Unrepairable corruption found
/// by the patrol is counted (fatals) but not thrown from the background
/// thread: the next operation's entry audit re-detects it and raises
/// pcu::Error(kIntegrity) in the owning job's context.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "dist/partedmesh.hpp"

namespace svc {

class Patrol {
 public:
  struct Stats {
    std::uint64_t sweeps = 0;   ///< cadence ticks
    std::uint64_t scrubs = 0;   ///< idle meshes audited
    std::uint64_t busy = 0;     ///< meshes skipped (guard held)
    std::uint64_t repairs = 0;  ///< corruptions detected during patrol scrubs
    std::uint64_t fatals = 0;   ///< unrepairable corruption sightings
  };

  explicit Patrol(int interval_ms = 10);
  ~Patrol();
  Patrol(const Patrol&) = delete;
  Patrol& operator=(const Patrol&) = delete;

  /// Register a mesh for scrubbing. `guard` must be held by the owner
  /// whenever an operation is mutating the mesh; both pointers must stay
  /// valid until unwatch(). Returns the registration id.
  std::uint64_t watch(dist::PartedMesh* pm, std::mutex* guard);

  /// Remove a registration; blocks until any in-flight scrub of it ends.
  void unwatch(std::uint64_t id);

  [[nodiscard]] Stats stats() const;

 private:
  void loop();
  void scrub(dist::PartedMesh& pm);

  struct Entry {
    std::uint64_t id = 0;
    dist::PartedMesh* pm = nullptr;
    std::mutex* guard = nullptr;
  };

  mutable std::mutex mutex_;  ///< registry + stats; held across each sweep
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
  bool stop_ = false;
  int interval_ms_;
  Stats stats_;
  std::thread thread_;
};

}  // namespace svc

#endif  // PUMI_SVC_PATROL_HPP
