#include "svc/ledger.hpp"

#include <cassert>

namespace svc {

Ledger::Ledger(int pool_size)
    : state_(static_cast<std::size_t>(pool_size), State::kFree) {
  assert(pool_size > 0);
}

int Ledger::poolSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(state_.size());
}

int Ledger::freeCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (State s : state_)
    if (s == State::kFree) ++n;
  return n;
}

int Ledger::deadCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (State s : state_)
    if (s == State::kDead) ++n;
  return n;
}

int Ledger::liveCapacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (State s : state_)
    if (s != State::kDead) ++n;
  return n;
}

std::vector<int> Ledger::tryAcquire(int n) {
  assert(n > 0);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> grant;
  grant.reserve(static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < state_.size(); ++r) {
    if (state_[r] != State::kFree) continue;
    grant.push_back(static_cast<int>(r));
    if (static_cast<int>(grant.size()) == n) break;
  }
  if (static_cast<int>(grant.size()) < n) return {};
  for (int r : grant) state_[static_cast<std::size_t>(r)] = State::kLeased;
  return grant;
}

void Ledger::release(const std::vector<int>& ranks) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (int r : ranks) {
    auto& s = state_.at(static_cast<std::size_t>(r));
    // A rank that died while leased stays dead: the corpse never returns to
    // the free list, so no later tenant can be handed it.
    if (s == State::kLeased) s = State::kFree;
  }
}

void Ledger::markDead(int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_.at(static_cast<std::size_t>(rank)) = State::kDead;
}

std::vector<int> Ledger::deadRanks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  for (std::size_t r = 0; r < state_.size(); ++r)
    if (state_[r] == State::kDead) out.push_back(static_cast<int>(r));
  return out;
}

}  // namespace svc
