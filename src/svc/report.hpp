#ifndef PUMI_SVC_REPORT_HPP
#define PUMI_SVC_REPORT_HPP

/// \file report.hpp
/// \brief Per-tenant service report: latency percentiles and the
/// shed/retry/failover accounting the overload and isolation proofs read.
///
/// Built by svc::Scheduler::report() from every job outcome it has seen.
/// writeJson emits the machine-readable form tools/bench_service.sh merges
/// into BENCH_SERVICE.json.

#include <iosfwd>
#include <string>
#include <vector>

#include "svc/job.hpp"

namespace svc {

/// One tenant's aggregate over all its jobs.
struct TenantStats {
  std::string tenant;
  int completed = 0;
  int rejected = 0;
  int shed = 0;
  int failed = 0;
  int failovers = 0;         ///< kRankFailed incidents absorbed
  int faults_recovered = 0;  ///< non-fatal structured errors retried past
  int retries = 0;           ///< admission resubmissions
  int packed = 0;            ///< jobs run on a sibling's grant
  int integrity_repairs = 0;  ///< corrupted parts repaired in place
  int integrity_flips = 0;    ///< memory faults injected (faults::memflip)
  /// Completed-job latency (submit -> done, queue wait included), ms.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

struct Report {
  std::vector<TenantStats> tenants;  ///< sorted by tenant name
  /// Every shed job as "tenant/name: reason" — overload degradation must
  /// name its victims, never drop them silently.
  std::vector<std::string> shed_jobs;
  int pool_size = 0;   ///< ranks the pool started with
  int ranks_dead = 0;  ///< ranks permanently lost to failures
  std::size_t queue_capacity = 0;
  std::size_t peak_queue_depth = 0;  ///< never exceeds queue_capacity

  [[nodiscard]] const TenantStats* tenant(const std::string& name) const;
  void writeJson(std::ostream& os) const;
};

/// JSON string escaping (backslash-escapes `"` and `\`) — shed reasons
/// quote job names, so anything embedding them in JSON must escape.
[[nodiscard]] std::string jsonEscape(const std::string& s);

/// Percentile of an unsorted latency sample (nearest-rank); 0 when empty.
[[nodiscard]] double percentile(std::vector<double> samples, double pct);

/// Fold one outcome into the tenant's running tallies (latency percentiles
/// are computed separately from the completed-job sample).
void accumulate(TenantStats& stats, const JobResult& result);

}  // namespace svc

#endif  // PUMI_SVC_REPORT_HPP
