#include "svc/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "dist/checkpoint.hpp"
#include "dist/digest.hpp"
#include "dist/failover.hpp"
#include "dist/integrity.hpp"
#include "dist/partedmesh.hpp"
#include "meshgen/boxmesh.hpp"
#include "parma/balance.hpp"
#include "part/partition.hpp"
#include "pcu/error.hpp"
#include "pcu/faults.hpp"
#include "pcu/trace.hpp"
#include "solver/poisson.hpp"

namespace svc {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Deterministic pseudo-random migration plan: ~5% of each part's elements
/// move to a random part (the same workload the elastic/failover demos use).
dist::MigrationPlan somePlan(dist::PartedMesh& pm, std::uint64_t seed) {
  common::Rng rng(seed);
  dist::MigrationPlan plan(static_cast<std::size_t>(pm.parts()));
  for (dist::PartId p = 0; p < pm.parts(); ++p)
    for (core::Ent e : pm.part(p).elements()) {
      if (rng.uniform() >= 0.05) continue;
      const auto dest = static_cast<dist::PartId>(
          rng.below(static_cast<std::uint64_t>(pm.parts())));
      if (dest != p) plan[static_cast<std::size_t>(p)][e] = dest;
    }
  return plan;
}

/// Fold the element-digest multiset into one order-independent witness
/// value (multiset iteration is sorted, so the fold is deterministic).
std::uint64_t foldDigest(const std::multiset<std::uint64_t>& digests) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t d : digests) {
    h ^= d;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions opts)
    : opts_(opts), ledger_(opts.pool_size) {
  if (opts_.patrol)
    patrol_ = std::make_unique<Patrol>(opts_.patrol_interval_ms);
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Jobs still queued are shed, by name — shutdown is an overload of one.
    for (auto& p : queue_) {
      JobResult r;
      r.state = JobState::kShed;
      r.tenant = p.spec.tenant;
      r.name = p.spec.name;
      r.reason = "service shutdown before execution";
      r.latency_ms = msSince(p.submitted);
      r.retries = p.retries;
      shed_log_.push_back(r.tenant + "/" + r.name + ": " + r.reason);
      results_.push_back(r);
      p.promise.set_value(std::move(r));
    }
    queue_.clear();
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t Scheduler::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::future<JobResult> Scheduler::submit(JobSpec spec) {
  return submitInternal(std::move(spec), 0);
}

std::future<JobResult> Scheduler::submitInternal(JobSpec spec, int retries) {
  if (spec.width < 1)
    throw pcu::Error(pcu::ErrorCode::kValidation, -1,
                     "job \"" + spec.tenant + "/" + spec.name +
                         "\" wants width >= 1, got " +
                         std::to_string(spec.width));
  std::unique_lock<std::mutex> lock(mutex_);
  // Admission gate 1: the live pool (dead ranks excluded) must be able to
  // seat the job at all. Checked against capacity, not the momentary free
  // count — a busy pool queues, a shrunken pool rejects.
  const int capacity = ledger_.liveCapacity();
  if (spec.width > capacity) {
    JobResult r;
    r.state = JobState::kRejected;
    r.tenant = spec.tenant;
    r.name = spec.name;
    r.retries = retries;
    r.reason = "width " + std::to_string(spec.width) +
               " exceeds live pool capacity " + std::to_string(capacity) +
               " (pool " + std::to_string(ledger_.poolSize()) + ", dead " +
               std::to_string(ledger_.deadCount()) + ")";
    results_.push_back(r);
    throw pcu::Error(pcu::ErrorCode::kAdmission, -1,
                     "job \"" + spec.tenant + "/" + spec.name +
                         "\" rejected: " + r.reason);
  }
  // Admission gate 2: the queue is bounded. A full queue admits a new job
  // only by preempting a strictly-lower-priority queued one; otherwise the
  // submission is rejected with the depth in the reason.
  if (queue_.size() >= opts_.queue_capacity) {
    auto victim = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it)
      if (it->spec.priority < spec.priority &&
          (victim == queue_.end() ||
           it->spec.priority < victim->spec.priority ||
           (it->spec.priority == victim->spec.priority &&
            it->order > victim->order)))
        victim = it;  // lowest priority; youngest among equals (least waited)
    if (victim == queue_.end()) {
      JobResult r;
      r.state = JobState::kRejected;
      r.tenant = spec.tenant;
      r.name = spec.name;
      r.retries = retries;
      r.reason = "queue full (depth " + std::to_string(queue_.size()) +
                 ", capacity " + std::to_string(opts_.queue_capacity) +
                 "), no lower-priority job to shed";
      results_.push_back(r);
      throw pcu::Error(pcu::ErrorCode::kAdmission, -1,
                       "job \"" + spec.tenant + "/" + spec.name +
                           "\" rejected: " + r.reason);
    }
    JobResult shed;
    shed.state = JobState::kShed;
    shed.tenant = victim->spec.tenant;
    shed.name = victim->spec.name;
    shed.retries = victim->retries;
    shed.latency_ms = msSince(victim->submitted);
    shed.reason = std::string("preempted by ") + priorityName(spec.priority) +
                  "-priority \"" + spec.tenant + "/" + spec.name + "\"";
    shed_log_.push_back(shed.tenant + "/" + shed.name + ": " + shed.reason);
    results_.push_back(shed);
    victim->promise.set_value(std::move(shed));
    queue_.erase(victim);
  }
  Pending p;
  p.spec = std::move(spec);
  p.submitted = Clock::now();
  p.retries = retries;
  p.order = next_order_++;
  auto future = p.promise.get_future();
  queue_.push_back(std::move(p));
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  lock.unlock();
  cv_.notify_all();
  return future;
}

JobResult Scheduler::run(JobSpec spec) { return submit(std::move(spec)).get(); }

std::future<JobResult> Scheduler::submitWithRetry(JobSpec spec) {
  int backoff_ms = opts_.backoff_ms;
  for (int attempt = 0;; ++attempt) {
    try {
      return submitInternal(spec, attempt);
    } catch (const pcu::Error& e) {
      if (e.code() != pcu::ErrorCode::kAdmission) throw;
      // Capacity rejections are permanent; only queue pressure is worth
      // waiting out.
      if (e.detail().find("queue full") == std::string::npos) throw;
      if (attempt >= opts_.max_resubmits) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, opts_.max_backoff_ms);
  }
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void Scheduler::workerLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    // Dispatch order: highest priority first, FIFO within a priority. The
    // first candidate whose width the pool can seat right now wins; if
    // every queued job is blocked on busy ranks, wait for a release.
    std::vector<std::size_t> order(queue_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (queue_[a].spec.priority != queue_[b].spec.priority)
        return queue_[a].spec.priority > queue_[b].spec.priority;
      return queue_[a].order < queue_[b].order;
    });
    std::vector<int> grant;
    std::size_t picked = queue_.size();
    for (std::size_t idx : order) {
      grant = ledger_.tryAcquire(queue_[idx].spec.width);
      if (!grant.empty()) {
        picked = idx;
        break;
      }
    }
    if (picked == queue_.size()) {
      cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    // Claim the job plus — packing — every queued job of the same tenant
    // that fits on this grant: small jobs of one tenant share one subgroup
    // lease instead of each waiting for its own.
    std::vector<Pending> batch;
    batch.push_back(std::move(queue_[picked]));
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(picked));
    if (opts_.pack_same_tenant) {
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->spec.tenant == batch.front().spec.tenant &&
            it->spec.width <= static_cast<int>(grant.size())) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    ++active_;
    lock.unlock();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto& p = batch[i];
      JobResult r = execute(p.spec, grant, i > 0, p.retries);
      r.latency_ms = msSince(p.submitted);
      recordOutcome(r);
      p.promise.set_value(std::move(r));
    }
    // Dead ranks stay dead inside release(); the rest return to the pool.
    ledger_.release(grant);
    lock.lock();
    --active_;
    lock.unlock();
    cv_.notify_all();
  }
}

JobResult Scheduler::execute(const JobSpec& spec, const std::vector<int>& grant,
                             bool packed, int retries) {
  JobResult res;
  res.tenant = spec.tenant;
  res.name = spec.name;
  res.ranks = static_cast<int>(grant.size());
  res.packed = packed;
  res.retries = retries;
  const auto t0 = Clock::now();
  // Tenant isolation: a fresh fault domain as this thread's ambient domain
  // scopes every faults::/arq:: decision the whole dist/parma/solver stack
  // makes below us; the trace tenant stamp scopes observability the same
  // way. Both unwind when this function returns.
  auto domain = std::make_shared<pcu::faults::Domain>();
  pcu::faults::DomainScope domain_scope(domain);
  pcu::trace::TenantScope tenant_scope(pcu::trace::intern(spec.tenant));
  try {
    if (spec.chaos.reliable) domain->setReliable(true);
    if (!spec.chaos.faults.empty())
      domain->install(pcu::faults::parsePlan(spec.chaos.faults));
    pcu::trace::Scope job_scope(
        pcu::trace::intern("svc:" + spec.tenant + "/" + spec.name));

    const int width = static_cast<int>(grant.size());
    auto gen = meshgen::boxTets(spec.nx, spec.ny, spec.nz);
    const auto assign =
        part::partition(*gen.mesh, width, part::Method::RCB);
    auto pm = dist::PartedMesh::distribute(
        *gen.mesh, gen.model.get(), assign,
        dist::PartMap(width, pcu::Machine::flat(width)));
    dist::failover::BuddyJournal journal;

    // Silent-corruption armor: active when the tenant's chaos spec armed a
    // memflip (or PUMI_INTEGRITY forces it). The armor repairs from the
    // same replicas failover evacuates from; the initial seal makes
    // boundary 0 the job's start, so a memflip@0 strikes the freshly
    // distributed mesh and the first operation's entry audit repairs it.
    dist::integrity::Armor* armor = pm->armorIfActive();
    std::mutex job_guard;
    std::uint64_t watch_id = 0;
    if (armor != nullptr) {
      armor->setJournal(&journal);
      armor->setCheckpointDir(spec.checkpoint_dir);
      // The seal records the pristine replica BEFORE any flip can strike.
      armor->sealAndMaybeInject();
      if (patrol_) watch_id = patrol_->watch(pm.get(), &job_guard);
    }
    struct Unwatch {
      Patrol* patrol;
      std::uint64_t id;
      ~Unwatch() {
        if (patrol != nullptr && id != 0) patrol->unwatch(id);
      }
    } unwatch{patrol_.get(), watch_id};

    // Run one operation with tier-2 retries for recoverable faults and
    // tenant-contained failover for rank failures. The blast radius of a
    // dead rank is exactly this job: evacuate its parts from the journal,
    // rebalance the survivors, and surrender the corpse to the ledger so no
    // other tenant is ever seated on it.
    // Phase-boundary durability: the journal always records; when the spec
    // names a checkpoint directory the same quiescent state also commits to
    // storage (evacuation's fallback for parts the journal lacks). The
    // checkpoint write runs under the tenant's fault domain — its storage
    // chaos applies — and a failed write is absorbed: the journal still
    // holds the state, so the job continues.
    auto persist = [&] {
      journal.record(*pm);
      if (spec.checkpoint_dir.empty()) return;
      try {
        dist::checkpoint(*pm, spec.checkpoint_dir);
        ++res.checkpoints;
      } catch (const pcu::Error&) {
        ++res.faults_recovered;
      }
    };
    auto attempt = [&](auto&& op) {
      // The job guard proves the mesh busy to the patrol for the whole
      // persist+op span; between attempts (and between phases) the patrol
      // may scrub.
      for (int tries = 0;; ++tries) {
        std::lock_guard<std::mutex> busy(job_guard);
        // Audit BEFORE persisting: a flip planted at the previous boundary
        // must be repaired before the journal/checkpoint re-record state,
        // or the corruption would be checksummed into the repair replicas
        // as truth.
        if (armor != nullptr) armor->auditAndRepair("svc:persist");
        persist();
        try {
          op();
          return;
        } catch (const pcu::Error& e) {
          if (e.code() == pcu::ErrorCode::kIntegrity) throw;
          if (e.code() == pcu::ErrorCode::kRankFailed) {
            const auto rep = dist::failover::evacuate(*pm, journal,
                                                      spec.checkpoint_dir);
            for (dist::PartId dead : rep.parts_evacuated)
              ledger_.markDead(grant[static_cast<std::size_t>(dead)]);
            parma::balanceAfterEvacuation(*pm, "Rgn", rep, {});
            pm->verify();
            ++res.failovers;
            return;  // the op aborted transactionally; survivors continue
          }
          ++res.faults_recovered;
          if (tries >= opts_.op_retries) throw;
        }
      }
    };

    // Each workflow phase ends on an explicit armor boundary (audit-and-
    // repair + reseal + scheduled flip), in addition to the per-operation
    // boundaries inside the transactional layer.
    auto phaseBoundary = [&](const char* where) {
      if (armor == nullptr) return;
      std::lock_guard<std::mutex> busy(job_guard);
      armor->boundary(where);
    };

    for (int round = 0; round < spec.migrate_rounds; ++round)
      attempt([&] {
        pm->migrate(somePlan(*pm, spec.seed + static_cast<std::uint64_t>(
                                                  round)));
      });
    phaseBoundary("svc:migrate");
    if (spec.balance) {
      parma::BalanceOptions bopts;
      bopts.max_rounds = 2;
      attempt([&] { parma::balance(*pm, "Rgn", bopts); });
      phaseBoundary("svc:balance");
    }
    if (spec.solve) {
      solver::PoissonOptions popts;
      popts.max_iterations = 200;
      popts.tolerance = 1e-8;
      attempt([&] {
        solver::solvePoisson(
            *pm, [](const common::Vec3&) { return 1.0; },
            [](const common::Vec3&) { return 0.0; }, popts);
      });
      phaseBoundary("svc:solve");
    }

    {
      std::lock_guard<std::mutex> busy(job_guard);
      if (armor != nullptr) armor->auditAndRepair("svc:final");
      pm->verify();
      persist();  // the completed mesh is the job's last committed state
    }
    if (armor != nullptr) {
      const auto irep = armor->report();
      res.integrity_repairs = static_cast<int>(irep.parts_repaired.size());
      res.integrity_flips = static_cast<int>(irep.flips_injected);
    }
    const auto digests = dist::digest::elementDigests(*pm);
    res.elements = digests.size();
    res.digest = foldDigest(digests);
    res.state = JobState::kCompleted;
  } catch (const pcu::Error& e) {
    res.state = JobState::kFailed;
    res.reason = e.what();
  } catch (const std::exception& e) {
    res.state = JobState::kFailed;
    res.reason = e.what();
  }
  res.run_ms = msSince(t0);
  return res;
}

void Scheduler::recordOutcome(const JobResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.push_back(result);
}

Report Scheduler::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Report rep;
  rep.pool_size = opts_.pool_size;
  rep.ranks_dead = ledger_.deadCount();
  rep.queue_capacity = opts_.queue_capacity;
  rep.peak_queue_depth = peak_queue_depth_;
  rep.shed_jobs = shed_log_;
  std::map<std::string, TenantStats> tenants;
  std::map<std::string, std::vector<double>> latencies;
  for (const auto& r : results_) {
    auto& t = tenants[r.tenant];
    t.tenant = r.tenant;
    accumulate(t, r);
    if (r.state == JobState::kCompleted) latencies[r.tenant].push_back(
        r.latency_ms);
  }
  for (auto& [name, t] : tenants) {
    const auto& samples = latencies[name];
    if (!samples.empty()) {
      t.p50_ms = percentile(samples, 50.0);
      t.p99_ms = percentile(samples, 99.0);
      double sum = 0.0, mx = 0.0;
      for (double s : samples) {
        sum += s;
        mx = std::max(mx, s);
      }
      t.mean_ms = sum / static_cast<double>(samples.size());
      t.max_ms = mx;
    }
    rep.tenants.push_back(std::move(t));
  }
  return rep;
}

}  // namespace svc
