#include "svc/patrol.hpp"

#include <algorithm>
#include <chrono>

#include "dist/integrity.hpp"
#include "pcu/error.hpp"
#include "pcu/trace.hpp"

namespace svc {

Patrol::Patrol(int interval_ms)
    : interval_ms_(std::max(1, interval_ms)), thread_([this] { loop(); }) {}

Patrol::~Patrol() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::uint64_t Patrol::watch(dist::PartedMesh* pm, std::mutex* guard) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  entries_.push_back({id, pm, guard});
  return id;
}

void Patrol::unwatch(std::uint64_t id) {
  // mutex_ is held for the whole sweep, so once we own it no scrub of this
  // entry is in flight and the owner may destroy the mesh.
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

Patrol::Stats Patrol::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Patrol::scrub(dist::PartedMesh& pm) {
  auto* armor = pm.armorIfActive();
  if (armor == nullptr) return;
  const auto before = armor->report();
  try {
    armor->auditAndRepair("patrol");
  } catch (const pcu::Error&) {
    // Unrepairable: count it, leave the throw to the owning job's next
    // entry audit (a background thread has no job context to fail).
    ++stats_.fatals;
  }
  const auto after = armor->report();
  stats_.repairs += after.mismatches - before.mismatches;
  ++stats_.scrubs;
  if (pcu::trace::enabled()) pcu::trace::counter("integrity:patrol_scrubs", 1);
}

void Patrol::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [&] { return stop_; });
    if (stop_) return;
    ++stats_.sweeps;
    for (const Entry& e : entries_) {
      // Only audit a provably idle mesh: if the owner is mid-operation the
      // guard is held and the mesh is skipped until the next sweep.
      if (!e.guard->try_lock()) {
        ++stats_.busy;
        continue;
      }
      scrub(*e.pm);
      e.guard->unlock();
    }
  }
}

}  // namespace svc
