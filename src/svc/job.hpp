#ifndef PUMI_SVC_JOB_HPP
#define PUMI_SVC_JOB_HPP

/// \file job.hpp
/// \brief Multi-tenant mesh-service job descriptions and outcomes.
///
/// A job is one tenant's request for a complete mesh workflow — generate a
/// box mesh, partition it to the requested width, run a few chaotic
/// migration rounds, rebalance, optionally solve a Poisson problem — run on
/// a subgroup of the service's rank pool under the tenant's own fault
/// domain. The scheduler (scheduler.hpp) admits, queues, packs, sheds and
/// executes jobs; the outcome of every job (completed, rejected, shed, or
/// failed) is a JobResult the per-tenant report aggregates.

#include <cstdint>
#include <string>

namespace svc {

/// Scheduling priority. Under queue pressure a newly submitted job may
/// preempt (shed) a queued job of strictly lower priority; equal priority
/// never preempts.
enum class Priority : int { kLow = 0, kNormal = 1, kHigh = 2 };

[[nodiscard]] inline const char* priorityName(Priority p) {
  switch (p) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

/// Chaos applied to the job's tenant-scoped fault domain. The spec string
/// uses the PUMI_FAULTS grammar (pcu::faults::parsePlan) and is installed
/// on the subgroup's *own* domain, so it can never leak into another
/// tenant's traffic. `reliable` flips the tenant-scoped ARQ override.
struct ChaosSpec {
  std::string faults;     ///< PUMI_FAULTS-style plan; empty = no injection
  bool reliable = false;  ///< tenant-scoped reliable delivery
};

/// One job request. Widths are in pool ranks (== mesh parts).
struct JobSpec {
  std::string tenant;  ///< owning tenant (report + trace attribution)
  std::string name;    ///< job name, unique per tenant per run
  int width = 4;       ///< ranks requested; admission checks the pool
  Priority priority = Priority::kNormal;
  std::uint64_t seed = 1;  ///< workload determinism (migration plans)
  int nx = 4, ny = 4, nz = 4;  ///< generated box-tet mesh dimensions
  int migrate_rounds = 2;      ///< pseudo-random migration rounds
  bool balance = true;         ///< run a parma balance pass at the end
  bool solve = false;          ///< run the Poisson solve stage
  ChaosSpec chaos;             ///< tenant-scoped fault injection
  /// When non-empty, the job checkpoints its mesh (dist::checkpoint) into
  /// this directory at every phase boundary — exactly where the journal
  /// records and transactional rollback lands — so failover evacuation can
  /// fall back to the checkpoint for parts the buddy journal lacks, and an
  /// operator can restore the job's last committed state after the fact.
  /// Checkpoint I/O runs under the tenant's fault domain, so storage chaos
  /// (iobitrot/iotorn/...) in `chaos.faults` exercises it; a failed
  /// checkpoint write is absorbed (counted in faults_recovered), never
  /// fatal to the job.
  std::string checkpoint_dir;
};

/// What happened to a job.
enum class JobState : int {
  kCompleted = 0,  ///< ran to completion (possibly absorbing failures)
  kRejected,       ///< admission control refused it (kAdmission at submit)
  kShed,           ///< queued, then dropped under overload/preemption
  kFailed,         ///< started executing but could not complete
};

[[nodiscard]] inline const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::kCompleted: return "completed";
    case JobState::kRejected: return "rejected";
    case JobState::kShed: return "shed";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

/// Outcome of one job.
struct JobResult {
  JobState state = JobState::kFailed;
  std::string tenant;
  std::string name;
  std::string reason;       ///< admission/shed reason, or failure detail
  double latency_ms = 0.0;  ///< submit -> outcome (queue wait included)
  double run_ms = 0.0;      ///< execution only
  std::size_t elements = 0;     ///< final mesh element count
  std::uint64_t digest = 0;     ///< order-independent element digest
  int ranks = 0;                ///< pool ranks the job actually held
  int failovers = 0;            ///< kRankFailed incidents absorbed
  int checkpoints = 0;          ///< checkpoints committed to checkpoint_dir
  int faults_recovered = 0;     ///< non-fatal structured errors retried past
  int retries = 0;              ///< admission resubmissions (submitWithRetry)
  bool packed = false;          ///< ran on a sibling job's grant
  /// Silent-corruption armor activity (dist/integrity.hpp), when the job's
  /// chaos spec schedules a memflip (or PUMI_INTEGRITY forces the armor on).
  int integrity_repairs = 0;    ///< corrupt parts repaired in place
  int integrity_flips = 0;      ///< memory faults injected into live state
};

}  // namespace svc

#endif  // PUMI_SVC_JOB_HPP
