#ifndef PUMI_SVC_SCHEDULER_HPP
#define PUMI_SVC_SCHEDULER_HPP

/// \file scheduler.hpp
/// \brief The multi-tenant mesh-service scheduler: admission control,
/// bounded queueing with priority shedding, same-tenant packing, and
/// tenant-isolated execution over the rank-pool ledger.
///
/// Execution model. The service owns a pool of ranks (the Ledger) and a
/// small crew of worker threads. submit() admits a job or rejects it with a
/// structured pcu::Error(kAdmission) naming the reason; admitted jobs wait
/// in a bounded queue until a worker can lease the requested width from the
/// pool. The worker then runs the whole mesh workflow (generate ->
/// partition -> migrate rounds -> balance -> optional solve) inside:
///
///  - a fresh pcu::faults::Domain installed as the thread's ambient domain
///    (faults::DomainScope), so the job's chaos spec, reliable-delivery
///    override, watchdog and heartbeat deadline are scoped to the tenant —
///    a sibling tenant's traffic never sees them;
///  - a pcu::trace::TenantScope, so every trace event the job records is
///    stamped with the tenant for per-tenant reporting
///    (stats::buildTraceReport(merged, tenant)).
///
/// Robustness. A rank failure inside a job (kRankFailed) is contained to
/// that tenant: the worker evacuates the dead parts from the buddy journal,
/// rebalances the survivors, marks the dead pool rank in the ledger
/// (permanently shrinking the pool — no other tenant is ever handed the
/// corpse), and completes the job. Under overload the queue never grows past
/// its bound: a higher-priority submission preempts (sheds) the
/// lowest-priority queued job — shed jobs are named in the report, never
/// silently dropped — and submitWithRetry() adds capped-backoff
/// resubmission on queue-full rejections.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/job.hpp"
#include "svc/ledger.hpp"
#include "svc/patrol.hpp"
#include "svc/report.hpp"

namespace svc {

struct SchedulerOptions {
  int pool_size = 16;  ///< ranks the service owns
  int workers = 2;     ///< concurrent job executors
  std::size_t queue_capacity = 8;  ///< bounded admission queue
  int max_resubmits = 5;           ///< submitWithRetry budget
  int backoff_ms = 2;              ///< first resubmission backoff
  int max_backoff_ms = 20;         ///< backoff cap
  bool pack_same_tenant = true;    ///< run queued same-tenant jobs that fit
                                   ///< on an already-leased grant
  int op_retries = 3;  ///< per-operation retries for non-fatal faults
  /// Background integrity patrol (svc/patrol.hpp): scrub the ledgers of
  /// idle job meshes between operations on this cadence. Off by default —
  /// jobs without integrity armor gain nothing from the extra thread.
  bool patrol = false;
  int patrol_interval_ms = 10;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions opts = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admit a job. Throws pcu::Error(kAdmission) naming the reason when the
  /// job cannot be admitted: width exceeding the live pool capacity, or a
  /// full queue with no strictly-lower-priority work to shed. On success
  /// the returned future resolves to the job's outcome (kCompleted, kShed
  /// if later preempted, or kFailed).
  std::future<JobResult> submit(JobSpec spec);

  /// submit() and wait for the outcome.
  JobResult run(JobSpec spec);

  /// submit() with capped-backoff resubmission: a queue-full rejection
  /// sleeps (backoff_ms doubling up to max_backoff_ms) and resubmits, up to
  /// max_resubmits times; the eventual result carries the retry count. A
  /// capacity rejection (width too large for the pool) is permanent and
  /// rethrown immediately.
  std::future<JobResult> submitWithRetry(JobSpec spec);

  /// Block until the queue is empty and every worker is idle.
  void drain();

  /// Jobs currently queued (not yet leased to a worker).
  [[nodiscard]] std::size_t queueDepth() const;

  [[nodiscard]] Ledger& ledger() { return ledger_; }
  [[nodiscard]] const SchedulerOptions& options() const { return opts_; }
  /// The background integrity patrol; nullptr unless options().patrol.
  [[nodiscard]] Patrol* patrol() { return patrol_.get(); }

  /// Aggregate every outcome seen so far into the per-tenant report.
  [[nodiscard]] Report report() const;

 private:
  struct Pending {
    JobSpec spec;
    std::promise<JobResult> promise;
    std::chrono::steady_clock::time_point submitted;
    int retries = 0;
    std::uint64_t order = 0;  ///< submission sequence, FIFO tie-break
  };

  std::future<JobResult> submitInternal(JobSpec spec, int retries);
  void workerLoop();
  /// Run one job on a leased grant of pool ranks. Never throws: every
  /// outcome (including internal failures) becomes a JobResult.
  JobResult execute(const JobSpec& spec, const std::vector<int>& grant,
                    bool packed, int retries);
  void recordOutcome(const JobResult& result);

  SchedulerOptions opts_;
  Ledger ledger_;
  std::unique_ptr<Patrol> patrol_;  ///< created when opts_.patrol

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  int active_ = 0;  ///< workers currently executing
  std::uint64_t next_order_ = 0;
  std::size_t peak_queue_depth_ = 0;

  // Outcome log (guarded by mutex_): per-job results and the completed-job
  // latency samples the percentile report is cut from.
  std::vector<JobResult> results_;
  std::vector<std::string> shed_log_;

  std::vector<std::thread> workers_;
};

}  // namespace svc

#endif  // PUMI_SVC_SCHEDULER_HPP
