#ifndef PUMI_SVC_LEDGER_HPP
#define PUMI_SVC_LEDGER_HPP

/// \file ledger.hpp
/// \brief The service's rank-pool ledger: who holds which rank, and which
/// ranks are dead.
///
/// The scheduler leases disjoint sets of pool ranks to jobs (each lease
/// backs one tenant subgroup) and returns them when the job finishes. A
/// rank that dies inside a tenant (kRankFailed) is marked dead here, which
/// permanently removes it from the pool: the dead rank is reclaimed from
/// every future free list, the pool capacity shrinks, and no other tenant
/// can ever be handed the corpse — the ledger is the blast-radius boundary
/// between tenants.
///
/// Thread-safe; every member may be called from any scheduler worker.

#include <mutex>
#include <vector>

namespace svc {

class Ledger {
 public:
  explicit Ledger(int pool_size);
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Ranks the pool started with.
  [[nodiscard]] int poolSize() const;
  /// Ranks currently available for lease.
  [[nodiscard]] int freeCount() const;
  /// Ranks permanently lost to failures.
  [[nodiscard]] int deadCount() const;
  /// Live pool capacity: poolSize() - deadCount(). Admission checks a job's
  /// width against this, not against the momentary free count — a busy pool
  /// queues, a shrunken pool rejects.
  [[nodiscard]] int liveCapacity() const;

  /// Lease `n` free ranks (lowest-numbered first). Empty when fewer than
  /// `n` are free right now — the caller waits and retries, it does not get
  /// a partial lease.
  [[nodiscard]] std::vector<int> tryAcquire(int n);

  /// Return a lease. Ranks marked dead while leased are *not* freed — they
  /// stay dead; the rest go back to the free list.
  void release(const std::vector<int>& ranks);

  /// Permanently remove a rank from the pool (its backing machine died).
  /// Valid for free ranks (reclaimed from the free list immediately) and
  /// leased ranks (the lease holder's release() will skip them). Idempotent.
  void markDead(int rank);

  [[nodiscard]] std::vector<int> deadRanks() const;

 private:
  enum class State : char { kFree, kLeased, kDead };
  mutable std::mutex mutex_;
  std::vector<State> state_;
};

}  // namespace svc

#endif  // PUMI_SVC_LEDGER_HPP
