#include "core/meshio.hpp"

#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "core/tagio.hpp"
#include "gmi/model.hpp"
#include "pcu/buffer.hpp"

namespace core {

namespace {

constexpr std::uint64_t kMagic = 0x50554d4952455031ull;  // "PUMIREP1"

void packCls(pcu::OutBuffer& b, gmi::Entity* cls) {
  b.pack<std::int32_t>(cls ? cls->dim() : -1);
  b.pack<std::int32_t>(cls ? cls->tag() : -1);
}

gmi::Entity* unpackCls(pcu::InBuffer& b, gmi::Model* model) {
  const auto dim = b.unpack<std::int32_t>();
  const auto tag = b.unpack<std::int32_t>();
  if (dim < 0) return nullptr;
  gmi::Entity* cls = model ? model->find(dim, tag) : nullptr;
  if (model != nullptr && cls == nullptr)
    throw std::runtime_error("readMesh: model entity (" +
                             std::to_string(dim) + "," + std::to_string(tag) +
                             ") not found");
  return cls;
}

}  // namespace

std::vector<std::byte> meshToBytes(const Mesh& mesh) {
  pcu::OutBuffer b;
  b.pack(kMagic);

  // Vertices: coordinates + classification + tags, indexed by iteration
  // order.
  std::unordered_map<Ent, std::uint32_t, EntHash> vindex;
  b.pack<std::uint64_t>(mesh.count(0));
  for (Ent v : mesh.entities(0)) {
    vindex.emplace(v, static_cast<std::uint32_t>(vindex.size()));
    b.pack(mesh.point(v));
    packCls(b, mesh.classification(v));
    packTags(mesh, v, b);
  }

  // Entities of every higher dimension, ascending, by canonical vertices.
  for (int d = 1; d <= 3; ++d) {
    b.pack<std::uint64_t>(mesh.count(d));
    for (Ent e : mesh.entities(d)) {
      b.pack<std::uint8_t>(static_cast<std::uint8_t>(e.topo()));
      for (Ent v : mesh.verts(e)) b.pack<std::uint32_t>(vindex.at(v));
      packCls(b, mesh.classification(e));
      packTags(mesh, e, b);
    }
  }

  return std::move(b).take();
}

void writeMesh(const Mesh& mesh, const std::string& path) {
  const auto bytes = meshToBytes(mesh);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("writeMesh: cannot open " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size())
    throw std::runtime_error("writeMesh: short write to " + path);
}

std::unique_ptr<Mesh> meshFromBytes(std::vector<std::byte> bytes,
                                    gmi::Model* model) {
  pcu::InBuffer b(std::move(bytes));

  if (b.unpack<std::uint64_t>() != kMagic)
    throw std::runtime_error("meshFromBytes: not a pumi-repro mesh stream");

  auto mesh = std::make_unique<Mesh>(model);
  const auto nverts = b.unpack<std::uint64_t>();
  std::vector<Ent> verts;
  verts.reserve(nverts);
  for (std::uint64_t i = 0; i < nverts; ++i) {
    const auto x = b.unpack<Vec3>();
    gmi::Entity* cls = unpackCls(b, model);
    const Ent v = mesh->createVertex(x, cls);
    unpackTags(*mesh, v, b);
    verts.push_back(v);
  }

  for (int d = 1; d <= 3; ++d) {
    const auto count = b.unpack<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto topo = static_cast<Topo>(b.unpack<std::uint8_t>());
      std::array<Ent, 8> vs{};
      const int nv = topoVertexCount(topo);
      for (int k = 0; k < nv; ++k)
        vs[static_cast<std::size_t>(k)] =
            verts.at(b.unpack<std::uint32_t>());
      gmi::Entity* cls = unpackCls(b, model);
      // Entities were written dimension-ascending, so every boundary
      // entity already exists; buildElement finds it and creates only e.
      const Ent e = mesh->buildElement(
          topo, {vs.data(), static_cast<std::size_t>(nv)}, cls);
      mesh->classify(e, cls);  // explicit file classification wins
      unpackTags(*mesh, e, b);
    }
  }
  if (!b.done())
    throw std::runtime_error("meshFromBytes: trailing bytes in mesh stream");
  return mesh;
}

std::unique_ptr<Mesh> readMesh(const std::string& path, gmi::Model* model) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("readMesh: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size())
    throw std::runtime_error("readMesh: short read from " + path);
  return meshFromBytes(std::move(bytes), model);
}

}  // namespace core
