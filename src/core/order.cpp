#include "core/order.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <utility>

namespace core::order {

namespace {

/// One past the highest live vertex slot (flat arrays are sized by this).
std::uint32_t vertexSlotBound(const Mesh& m) {
  std::uint32_t bound = 0;
  for (Ent v : m.entities(0)) bound = std::max(bound, v.index() + 1);
  return bound;
}

Ent otherVertex(const Mesh& m, Ent edge, Ent v) {
  const auto vs = m.verts(edge);
  return vs[0] == v ? vs[1] : vs[0];
}

/// BFS visit order from `seed` over the vertex-edge graph, ascending-degree
/// neighbour tie-break, restarting on disconnection.
std::vector<Ent> bfs(const Mesh& m, Ent seed, std::uint32_t slot_bound) {
  std::vector<char> visited(slot_bound, 0);
  std::vector<Ent> order;
  order.reserve(m.count(0));
  std::deque<Ent> queue;
  auto push = [&](Ent v) {
    if (!visited[v.index()]) {
      visited[v.index()] = 1;
      queue.push_back(v);
    }
  };
  push(seed);
  auto restart = m.entities(0).begin();
  const auto end = m.entities(0).end();
  std::vector<std::pair<std::uint32_t, Ent>> nbrs;
  while (order.size() < m.count(0)) {
    if (queue.empty()) {
      while (restart != end && visited[(*restart).index()]) ++restart;
      if (restart == end) break;
      push(*restart);
    }
    const Ent v = queue.front();
    queue.pop_front();
    order.push_back(v);
    nbrs.clear();
    for (Ent e : m.up(v)) {
      const Ent o = otherVertex(m, e, v);
      if (!visited[o.index()]) nbrs.emplace_back(m.up(o).size(), o);
    }
    std::sort(nbrs.begin(), nbrs.end());
    for (const auto& [deg, o] : nbrs) {
      (void)deg;
      push(o);
    }
  }
  return order;
}

}  // namespace

std::vector<Ent> rcmVertices(const Mesh& m) {
  if (m.count(0) == 0) return {};
  const std::uint32_t bound = vertexSlotBound(m);
  // Pseudo-peripheral seed: the last vertex of a BFS from the first.
  const Ent first = *m.entities(0).begin();
  const Ent peripheral = bfs(m, first, bound).back();
  std::vector<Ent> order = bfs(m, peripheral, bound);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<std::uint32_t> ranksOf(const Mesh& m,
                                   const std::vector<Ent>& vorder) {
  std::vector<std::uint32_t> ranks(vertexSlotBound(m), kNoRank);
  for (std::size_t i = 0; i < vorder.size(); ++i)
    ranks[vorder[i].index()] = static_cast<std::uint32_t>(i);
  return ranks;
}

std::vector<Ent> byMinVertexRank(const Mesh& m, int d,
                                 const std::vector<std::uint32_t>& vranks) {
  std::vector<std::pair<std::uint32_t, Ent>> keyed;
  keyed.reserve(m.count(d));
  for (Ent e : m.entities(d)) {
    std::uint32_t best = kNoRank;
    if (d == 0) {
      best = vranks[e.index()];
    } else {
      for (Ent v : m.verts(e)) best = std::min(best, vranks[v.index()]);
    }
    keyed.emplace_back(best, e);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Ent> out;
  out.reserve(keyed.size());
  for (const auto& [k, e] : keyed) {
    (void)k;
    out.push_back(e);
  }
  return out;
}

std::size_t bandwidth(const Mesh& m, const std::vector<std::uint32_t>& vranks) {
  std::size_t bw = 0;
  for (Ent e : m.entities(1)) {
    const auto vs = m.verts(e);
    const std::int64_t a = vranks[vs[0].index()];
    const std::int64_t b = vranks[vs[1].index()];
    bw = std::max(bw, static_cast<std::size_t>(std::llabs(a - b)));
  }
  return bw;
}

}  // namespace core::order
