#include "core/vtk.hpp"

#include <fstream>
#include <stdexcept>

namespace core {

namespace {

int vtkCellType(Topo t) {
  switch (t) {
    case Topo::Edge: return 3;      // VTK_LINE
    case Topo::Tri: return 5;       // VTK_TRIANGLE
    case Topo::Quad: return 9;      // VTK_QUAD
    case Topo::Tet: return 10;      // VTK_TETRA
    case Topo::Hex: return 12;      // VTK_HEXAHEDRON
    case Topo::Prism: return 13;    // VTK_WEDGE
    case Topo::Pyramid: return 14;  // VTK_PYRAMID
    default: return 1;              // VTK_VERTEX
  }
}

}  // namespace

void writeVtk(const Mesh& m, const std::string& path,
              const std::vector<CellScalar>& cell_data) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);

  const int dim = m.dim();
  // Sequential numbering of vertices.
  std::unordered_map<Ent, std::size_t, EntHash> vnum;
  vnum.reserve(m.count(0));
  out << "# vtk DataFile Version 3.0\npumi-repro mesh\nASCII\n"
      << "DATASET UNSTRUCTURED_GRID\n";
  out << "POINTS " << m.count(0) << " double\n";
  for (Ent v : m.entities(0)) {
    vnum.emplace(v, vnum.size());
    const Vec3 p = m.point(v);
    out << p.x << " " << p.y << " " << p.z << "\n";
  }

  std::size_t total_ints = 0;
  for (Ent e : m.entities(dim)) total_ints += 1 + m.verts(e).size();
  out << "CELLS " << m.count(dim) << " " << total_ints << "\n";
  std::vector<Ent> elements;  // fix the order for types + data
  elements.reserve(m.count(dim));
  for (Ent e : m.entities(dim)) {
    elements.push_back(e);
    const auto vs = m.verts(e);
    out << vs.size();
    for (Ent v : vs) out << " " << vnum.at(v);
    out << "\n";
  }
  out << "CELL_TYPES " << elements.size() << "\n";
  for (Ent e : elements) out << vtkCellType(e.topo()) << "\n";

  if (!cell_data.empty()) {
    out << "CELL_DATA " << elements.size() << "\n";
    for (const auto& scalar : cell_data) {
      out << "SCALARS " << scalar.name << " double 1\nLOOKUP_TABLE default\n";
      for (Ent e : elements) {
        auto it = scalar.values.find(e);
        out << (it == scalar.values.end() ? 0.0 : it->second) << "\n";
      }
    }
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace core
