#ifndef PUMI_CORE_MEASURE_HPP
#define PUMI_CORE_MEASURE_HPP

/// \file measure.hpp
/// \brief Geometric measures of mesh entities (length, area, volume).

#include "core/mesh.hpp"

namespace core {

/// Centroid (mean of vertex positions).
[[nodiscard]] Vec3 centroid(const Mesh& m, Ent e);

/// Measure appropriate to the entity's dimension: length of edges, area of
/// faces, volume of regions; vertices measure 0. Faces are measured by fan
/// triangulation from the first vertex; hexes/prisms/pyramids by
/// decomposition into tets, so mildly warped cells still measure sensibly.
[[nodiscard]] double measure(const Mesh& m, Ent e);

/// Signed volume of the tetrahedron (a,b,c,d); positive when d lies on the
/// side of triangle (a,b,c) that its right-hand-rule normal points to.
[[nodiscard]] double tetVolume(const Vec3& a, const Vec3& b, const Vec3& c,
                               const Vec3& d);

/// Axis-aligned bounding box of the whole mesh (vertex hull).
[[nodiscard]] common::Box3 bounds(const Mesh& m);

}  // namespace core

#endif  // PUMI_CORE_MEASURE_HPP
