#include "core/mesh.hpp"

#include <algorithm>
#include <stdexcept>

#include "gmi/model.hpp"
#include "pcu/trace.hpp"

namespace core {

namespace {

/// Compare two small vertex sets irrespective of order. Vertex lists are at
/// most 8 long (hex), so a quadratic containment check beats sorting.
bool sameVertexSet(std::span<const Ent> a, std::span<const Ent> b) {
  if (a.size() != b.size()) return false;
  for (const Ent& x : a) {
    bool found = false;
    for (const Ent& y : b)
      if (x == y) {
        found = true;
        break;
      }
    if (!found) return false;
  }
  return true;
}

}  // namespace

Ent Mesh::createVertex(const Vec3& x, gmi::Entity* cls) {
  Pool& p = pool(Topo::Vertex);
  std::uint32_t idx;
  if (!p.free_list.empty()) {
    idx = p.free_list.back();
    p.free_list.pop_back();
    p.alive[idx] = 1;
    p.up[idx].clear();
    p.cls[idx] = cls;
    coords_[idx] = x;
  } else {
    idx = p.slots();
    p.alive.push_back(1);
    p.up.emplace_back();
    p.cls.push_back(cls);
    coords_.push_back(x);
  }
  p.live += 1;
  ++topo_version_;
  return Ent(Topo::Vertex, idx);
}

Ent Mesh::allocate(Topo t, std::span<const Ent> vs, std::span<const Ent> down,
                   gmi::Entity* cls) {
  Pool& p = pool(t);
  if (p.stride_verts == 0) {
    p.stride_verts = topoVertexCount(t);
    p.stride_down = topoBoundaryCount(t, topoDim(t) - 1);
  }
  assert(static_cast<int>(vs.size()) == p.stride_verts);
  assert(static_cast<int>(down.size()) == p.stride_down);
  std::uint32_t idx;
  if (!p.free_list.empty()) {
    idx = p.free_list.back();
    p.free_list.pop_back();
    p.alive[idx] = 1;
    p.up[idx].clear();
    p.cls[idx] = cls;
    std::copy(vs.begin(), vs.end(),
              p.verts.begin() + std::size_t{idx} * p.stride_verts);
    std::copy(down.begin(), down.end(),
              p.down.begin() + std::size_t{idx} * p.stride_down);
  } else {
    idx = p.slots();
    p.alive.push_back(1);
    p.up.emplace_back();
    p.cls.push_back(cls);
    p.verts.insert(p.verts.end(), vs.begin(), vs.end());
    p.down.insert(p.down.end(), down.begin(), down.end());
  }
  p.live += 1;
  ++topo_version_;
  const Ent e(t, idx);
  for (Ent b : down) {
    Pool& bp = pool(b.topo());
    bp.up[b.index()].push_back(e);
  }
  return e;
}

Ent Mesh::buildElement(Topo t, std::span<const Ent> vs, gmi::Entity* cls) {
  assert(static_cast<int>(vs.size()) == topoVertexCount(t));
  if (t == Topo::Vertex) return vs[0];
  if (Ent found = findEntity(t, vs)) return found;
  const int d = topoDim(t);
  if (d == 1) {
    // An edge's one-level boundary is its vertices.
    return allocate(t, vs, vs, cls);
  }
  std::array<Ent, kMaxDown> down{};
  const int nb = topoBoundaryCount(t, d - 1);
  for (int i = 0; i < nb; ++i) {
    const Topo bt = topoBoundaryTopo(t, d - 1, i);
    const auto idxs = topoBoundaryVerts(t, d - 1, i);
    std::array<Ent, 4> bverts{};
    for (std::size_t k = 0; k < idxs.size(); ++k) bverts[k] = vs[idxs[k]];
    down[i] = buildElement(bt, {bverts.data(), idxs.size()}, cls);
  }
  return allocate(t, vs, {down.data(), static_cast<std::size_t>(nb)}, cls);
}

void Mesh::destroy(Ent e) {
  assert(alive(e));
  Pool& p = pool(e.topo());
  if (!p.up[e.index()].empty())
    throw std::logic_error("destroy: entity still bounds higher entities");
  if (e.topo() != Topo::Vertex) {
    const std::span<const Ent> down{
        p.down.data() + std::size_t{e.index()} * p.stride_down,
        static_cast<std::size_t>(p.stride_down)};
    for (Ent b : down) {
      Pool& bp = pool(b.topo());
      bp.up[b.index()].eraseValue(e);
    }
  }
  tags_.removeAll(e);
  p.alive[e.index()] = 0;
  p.cls[e.index()] = nullptr;
  p.free_list.push_back(e.index());
  p.live -= 1;
  ++topo_version_;
}

bool Mesh::alive(Ent e) const {
  if (e.null()) return false;
  const Pool& p = pool(e.topo());
  return e.index() < p.slots() && p.alive[e.index()];
}

std::size_t Mesh::count(int d) const {
  std::size_t n = 0;
  for (Topo t : toposOfDim(d)) n += pool(t).live;
  return n;
}

std::size_t Mesh::countTopo(Topo t) const { return pool(t).live; }

int Mesh::dim() const {
  for (int d = 3; d >= 0; --d)
    if (count(d) > 0) return d;
  return -1;
}

Vec3 Mesh::point(Ent v) const {
  assert(v.topo() == Topo::Vertex && alive(v));
  return coords_[v.index()];
}

void Mesh::setPoint(Ent v, const Vec3& x) {
  assert(v.topo() == Topo::Vertex && alive(v));
  coords_[v.index()] = x;
  ++data_version_;
}

gmi::Entity* Mesh::classification(Ent e) const {
  assert(alive(e));
  return pool(e.topo()).cls[e.index()];
}

void Mesh::classify(Ent e, gmi::Entity* cls) {
  assert(alive(e));
  pool(e.topo()).cls[e.index()] = cls;
  ++data_version_;
}

std::span<const Ent> Mesh::verts(Ent e) const {
  assert(alive(e));
  if (e.topo() == Topo::Vertex) {
    // A vertex's canonical vertex list is itself; materialize from storage
    // is impossible (vertices are not stored in their own verts array), so
    // callers should special-case; we return an empty span here and the
    // public downward() handles vertices.
    return {};
  }
  const Pool& p = pool(e.topo());
  return {p.verts.data() + std::size_t{e.index()} * p.stride_verts,
          static_cast<std::size_t>(p.stride_verts)};
}

int Mesh::downward(Ent e, int d, Ent* out) const {
  assert(alive(e));
  const int ed = topoDim(e.topo());
  assert(d <= ed);
  if (d == ed) {
    out[0] = e;
    return 1;
  }
  if (e.topo() == Topo::Vertex) {
    out[0] = e;
    return 1;
  }
  if (d == 0) {
    const auto vs = verts(e);
    std::copy(vs.begin(), vs.end(), out);
    return static_cast<int>(vs.size());
  }
  const Pool& p = pool(e.topo());
  if (d == ed - 1) {
    const Ent* src = p.down.data() + std::size_t{e.index()} * p.stride_down;
    std::copy(src, src + p.stride_down, out);
    return p.stride_down;
  }
  // Regions asked for edges: derive from canonical templates + findEntity.
  assert(ed == 3 && d == 1);
  const auto vs = verts(e);
  const int ne = topoBoundaryCount(e.topo(), 1);
  for (int i = 0; i < ne; ++i) {
    const auto idxs = topoBoundaryVerts(e.topo(), 1, i);
    const std::array<Ent, 2> ev{vs[idxs[0]], vs[idxs[1]]};
    out[i] = findEntity(Topo::Edge, ev);
    assert(out[i] && "mesh incomplete: missing edge of region");
  }
  return ne;
}

const UpList& Mesh::up(Ent e) const {
  assert(alive(e));
  return pool(e.topo()).up[e.index()];
}

std::vector<Ent> Mesh::adjacent(Ent e, int d) const {
  assert(alive(e));
  const int ed = topoDim(e.topo());
  if (d == ed) return {e};
  if (d < ed) {
    std::array<Ent, kMaxDown> buf{};
    const int n = downward(e, d, buf.data());
    return {buf.begin(), buf.begin() + n};
  }
  // Upward traversal with deduplication, one level at a time.
  std::vector<Ent> current{e};
  for (int level = ed; level < d; ++level) {
    std::vector<Ent> next;
    for (Ent c : current) {
      for (Ent u : up(c)) {
        if (std::find(next.begin(), next.end(), u) == next.end())
          next.push_back(u);
      }
    }
    current = std::move(next);
  }
  return current;
}

int Mesh::adjacentInto(Ent e, int d, AdjVec& out) const {
  assert(alive(e));
  out.clear();
  const int ed = topoDim(e.topo());
  if (d == ed) {
    out.push_back(e);
    return 1;
  }
  if (d < ed) {
    std::array<Ent, kMaxDown> buf{};
    const int n = downward(e, d, buf.data());
    for (int i = 0; i < n; ++i) out.push_back(buf[i]);
    return n;
  }
  // Upward level-by-level with linear dedup (closures are O(1) small);
  // ping-pong between `out` and one scratch vector — no heap traffic
  // while the lists stay inline.
  AdjVec scratch;
  AdjVec* cur = &scratch;
  AdjVec* nxt = &out;
  cur->push_back(e);
  for (int level = ed; level < d; ++level) {
    nxt->clear();
    for (Ent c : *cur) {
      for (Ent u : up(c)) {
        if (!nxt->contains(u)) nxt->push_back(u);
      }
    }
    std::swap(cur, nxt);
  }
  if (cur != &out) out = *cur;
  return static_cast<int>(out.size());
}

const Mesh::Csr& Mesh::csr(int from, int to) const {
  assert(from >= 0 && from <= 3 && to >= 0 && to <= 3);
  auto& slot = csr_[static_cast<std::size_t>(from) * 4 + static_cast<std::size_t>(to)];
  if (!slot) slot = std::make_unique<Csr>();
  if (slot->version != topo_version_) {
    buildCsr(*slot, from, to);
    slot->version = topo_version_;
  }
  return *slot;
}

void Mesh::buildCsr(Csr& c, int from, int to) const {
  pcu::trace::Scope span("layout:csr_build");
  c.base.fill(0);
  std::uint32_t nrows = 0;
  for (Topo t : toposOfDim(from)) {
    c.base[static_cast<std::size_t>(t)] = nrows;
    nrows += pool(t).slots();
  }
  c.offsets.assign(nrows + 1, 0);
  c.items.clear();
  std::array<Ent, kMaxDown> buf{};
  if (from >= to) {
    // Downward (and identity): each row comes straight from the entity's
    // own boundary storage; emit rows in slot order, one pass.
    std::uint32_t r = 0;
    for (Topo t : toposOfDim(from)) {
      const Pool& p = pool(t);
      for (std::uint32_t i = 0; i < p.slots(); ++i, ++r) {
        if (p.alive[i]) {
          const int n = downward(Ent(t, i), to, buf.data());
          c.items.insert(c.items.end(), buf.begin(), buf.begin() + n);
        }
        c.offsets[r + 1] = static_cast<std::uint32_t>(c.items.size());
      }
    }
    return;
  }
  // Upward: transpose of (to -> from) by the standard two-pass CSR build
  // (count, prefix-sum, fill). No dedup needed: a higher entity lists each
  // boundary entity exactly once, so every (row, item) pair is unique.
  for (Topo t : toposOfDim(to)) {
    const Pool& p = pool(t);
    for (std::uint32_t i = 0; i < p.slots(); ++i) {
      if (!p.alive[i]) continue;
      const int n = downward(Ent(t, i), from, buf.data());
      for (int k = 0; k < n; ++k) c.offsets[c.rowOf(buf[k]) + 1] += 1;
    }
  }
  for (std::uint32_t r = 0; r < nrows; ++r) c.offsets[r + 1] += c.offsets[r];
  c.items.resize(c.offsets[nrows]);
  std::vector<std::uint32_t> cursor(c.offsets.begin(), c.offsets.end() - 1);
  for (Topo t : toposOfDim(to)) {
    const Pool& p = pool(t);
    for (std::uint32_t i = 0; i < p.slots(); ++i) {
      if (!p.alive[i]) continue;
      const Ent e(t, i);
      const int n = downward(e, from, buf.data());
      for (int k = 0; k < n; ++k) c.items[cursor[c.rowOf(buf[k])]++] = e;
    }
  }
}

Ent Mesh::findEntity(Topo t, std::span<const Ent> vs) const {
  assert(static_cast<int>(vs.size()) == topoVertexCount(t));
  const int d = topoDim(t);
  if (d == 0) return vs[0];
  if (d == 1) {
    for (Ent e : up(vs[0]))
      if (e.topo() == t && sameVertexSet(verts(e), vs)) return e;
    return {};
  }
  // Find one boundary entity from the canonical template, then scan its
  // upward adjacency. Bounded work: upward lists are O(1) in mesh size.
  const Topo bt = topoBoundaryTopo(t, d - 1, 0);
  const auto idxs = topoBoundaryVerts(t, d - 1, 0);
  std::array<Ent, 4> bverts{};
  for (std::size_t k = 0; k < idxs.size(); ++k) bverts[k] = vs[idxs[k]];
  const Ent b = findEntity(bt, {bverts.data(), idxs.size()});
  if (!b) return {};
  for (Ent e : up(b))
    if (e.topo() == t && sameVertexSet(verts(e), vs)) return e;
  return {};
}

/// --- iteration ------------------------------------------------------------

Mesh::EntIter::EntIter(const Mesh* mesh, int dim, bool at_end)
    : mesh_(mesh), topos_(toposOfDim(dim)), topo_pos_(0), index_(0) {
  if (at_end) {
    topo_pos_ = topos_.size();
    index_ = 0;
    return;
  }
  settle();
}

Ent Mesh::EntIter::operator*() const {
  return Ent(topos_[topo_pos_], index_);
}

Mesh::EntIter& Mesh::EntIter::operator++() {
  ++index_;
  settle();
  return *this;
}

void Mesh::EntIter::settle() {
  while (topo_pos_ < topos_.size()) {
    const Pool& p = mesh_->pool(topos_[topo_pos_]);
    while (index_ < p.slots() && !p.alive[index_]) ++index_;
    if (index_ < p.slots()) return;
    ++topo_pos_;
    index_ = 0;
  }
  index_ = 0;  // canonical end state
}

std::vector<Ent> Mesh::all(int d) const {
  std::vector<Ent> out;
  out.reserve(count(d));
  for (Ent e : entities(d)) out.push_back(e);
  return out;
}

Mesh::Set& Mesh::createSet(const std::string& name) {
  auto [it, inserted] = sets_.emplace(name, Set(name));
  if (!inserted) throw std::invalid_argument("set already exists: " + name);
  return it->second;
}

Mesh::Set* Mesh::findSet(const std::string& name) {
  auto it = sets_.find(name);
  return it == sets_.end() ? nullptr : &it->second;
}

void Mesh::destroySet(const std::string& name) { sets_.erase(name); }

}  // namespace core
