#ifndef PUMI_CORE_MESH_HPP
#define PUMI_CORE_MESH_HPP

/// \file mesh.hpp
/// \brief The mesh database: a complete unstructured mesh representation.
///
/// This is PUMI's central data structure (paper Sec. II): a boundary
/// representation over the base topological entities vertex (0D), edge (1D),
/// face (2D) and region (3D). The representation is *complete*: one-level
/// downward and upward adjacencies are stored for every entity, so any
/// adjacency interrogation costs O(1) — bounded local work independent of
/// mesh size. Each entity additionally stores its canonical vertex list
/// (making geometric evaluation direct) and its geometric classification —
/// the highest-dimension geometric model entity it partly represents.
///
/// Dynamic mesh updates (creation and deletion of entities at any time) are
/// first-class: storage pools use free lists so adaptation and migration can
/// churn entities without reallocation of the whole mesh.

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/set.hpp"
#include "common/smallvec.hpp"
#include "common/tag.hpp"
#include "common/vec.hpp"
#include "core/entity.hpp"
#include "core/topo.hpp"

namespace gmi {
class Entity;
class Model;
}  // namespace gmi

namespace core {

namespace integrity {
struct MeshAccess;
}

using common::Vec3;

/// Upward adjacency list type (see smallvec.hpp for why not std::vector).
using UpList = common::SmallVec<Ent, 4>;

/// Maximum number of one-level boundary entities of any supported type
/// (a hex has 12 edges); sizes the stack arrays used by adjacency queries.
inline constexpr int kMaxDown = 12;

/// Result/scratch vector for the no-allocation adjacency queries
/// (Mesh::adjacentInto). Sized so typical 3D closures stay inline: an
/// interior tet-mesh vertex touches ~24 regions and ~36 faces.
using AdjVec = common::SmallVec<Ent, 48>;

class Mesh {
 public:
  using Tags = common::TagRegistry<Ent, EntHash>;
  using Tag = Tags::Tag;
  using Set = common::ItemSet<Ent, EntHash>;

  /// A mesh optionally references the geometric model its entities classify
  /// against; the model must outlive the mesh.
  explicit Mesh(gmi::Model* model = nullptr) : model_(model) {}
  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  /// Deep-copy another mesh's full state into this one (entities, coords,
  /// classification, tags, sets). Ent handles are (type, index) pool slots,
  /// so handles taken against `other` address the same entities here; Tag
  /// pointers do NOT carry over — re-find() them by name. Classification
  /// pointers are shared with `other`'s model, which must outlive both.
  /// This is the snapshot primitive behind transactional distributed
  /// operations (dist::PartedMesh rollback).
  void copyFrom(const Mesh& other) {
    pools_ = other.pools_;
    coords_ = other.coords_;
    model_ = other.model_;
    tags_ = other.tags_;
    sets_ = other.sets_;
    ++topo_version_;  // invalidate any cached CSR adjacency views
    ++data_version_;
  }

  [[nodiscard]] gmi::Model* model() const { return model_; }

  /// --- entity creation & deletion -------------------------------------

  /// Create a mesh vertex at `x`, classified on `cls` (may be null).
  Ent createVertex(const Vec3& x, gmi::Entity* cls = nullptr);

  /// Find-or-create the entity of type `t` over the given vertices
  /// (canonical template order), creating any missing intermediate
  /// entities. Newly created entities are classified on `cls`; existing
  /// entities keep their classification.
  Ent buildElement(Topo t, std::span<const Ent> verts,
                   gmi::Entity* cls = nullptr);

  /// Delete an entity. It must not bound any live higher-dimension entity.
  /// Tag values attached to it are dropped; handles to it become invalid.
  void destroy(Ent e);

  /// --- basic queries ----------------------------------------------------

  [[nodiscard]] bool alive(Ent e) const;
  /// Entity count of one dimension (0..3).
  [[nodiscard]] std::size_t count(int dim) const;
  [[nodiscard]] std::size_t countTopo(Topo t) const;
  /// Highest dimension with live entities (-1 for an empty mesh).
  [[nodiscard]] int dim() const;

  [[nodiscard]] Vec3 point(Ent v) const;
  void setPoint(Ent v, const Vec3& x);

  [[nodiscard]] gmi::Entity* classification(Ent e) const;
  void classify(Ent e, gmi::Entity* cls);

  /// --- adjacency (all O(1): bounded local work) -------------------------

  /// Canonical vertices of an entity.
  [[nodiscard]] std::span<const Ent> verts(Ent e) const;

  /// Downward adjacency: fills `out` with the entities of dimension `d`
  /// bounding `e`, in canonical template order; returns the count.
  /// `out` must hold at least kMaxDown entries.
  int downward(Ent e, int d, Ent* out) const;

  /// One-level upward adjacency (dimension dim(e)+1).
  [[nodiscard]] const UpList& up(Ent e) const;

  /// General adjacency in either direction, deduplicated; `d` may be any
  /// dimension. For d == dim(e) returns {e}. Allocates its result — hot
  /// loops should use adjacentInto() (no allocation) or adjacentSpan()
  /// (amortized CSR view) instead.
  [[nodiscard]] std::vector<Ent> adjacent(Ent e, int d) const;

  /// No-allocation general adjacency: clears `out`, fills it with the
  /// deduplicated entities of dimension `d` adjacent to `e` (same contents
  /// and order as adjacent()), returns the count. `out` stays inline for
  /// typical 3D closures; reuse one AdjVec across a loop.
  int adjacentInto(Ent e, int d, AdjVec& out) const;

  /// --- CSR adjacency view -----------------------------------------------

  /// Flat compressed-sparse-row view of one (from-dim -> to-dim) adjacency:
  /// row r = base[topo(e)] + e.index() spans the adjacent entities of
  /// `e`. Rows are indexed by *pool slot* (dead slots own empty rows), so
  /// lookup is pure arithmetic. Built lazily by csr()/adjacentSpan() and
  /// invalidated by any topology change (creation/deletion/copyFrom).
  struct Csr {
    std::array<std::uint32_t, kTopoCount> base{};  ///< row base per topo
    std::vector<std::uint32_t> offsets;            ///< rows + 1
    std::vector<Ent> items;                        ///< concatenated rows
    std::uint64_t version = ~std::uint64_t{0};     ///< topoVersion at build

    [[nodiscard]] std::uint32_t rowOf(Ent e) const {
      return base[static_cast<std::size_t>(e.topo())] + e.index();
    }
    [[nodiscard]] std::span<const Ent> row(std::uint32_t r) const {
      return {items.data() + offsets[r], offsets[r + 1] - offsets[r]};
    }
  };

  /// The lazily built CSR table for (from -> to). The first call after a
  /// topology change rebuilds it (traced as "layout:csr_build"); later
  /// calls are free. NOT safe to call concurrently while stale — traversal
  /// loops that share a mesh across threads must prime the view first.
  const Csr& csr(int from, int to) const;

  /// Adjacency of `e` as a span into the CSR view — zero-copy, amortized
  /// O(1). Same contents as adjacent(e, d) up to order (CSR upward rows
  /// are ordered by adjacent-entity iteration order, not discovery order).
  [[nodiscard]] std::span<const Ent> adjacentSpan(Ent e, int d) const {
    const Csr& c = csr(topoDim(e.topo()), d);
    return c.row(c.rowOf(e));
  }

  /// Monotone counter bumped by every topology mutation; equality of two
  /// observations proves no entity was created or destroyed in between.
  [[nodiscard]] std::uint64_t topoVersion() const { return topo_version_; }

  /// Monotone counter bumped by every non-topological data mutation
  /// (setPoint, classify, copyFrom). Together with topoVersion() it gates
  /// the integrity ledger's lazy re-hashing of pool/coordinate sections:
  /// both counters unchanged proves no *legitimate* write touched them.
  [[nodiscard]] std::uint64_t dataVersion() const { return data_version_; }

  /// Find an existing entity of type `t` over exactly these vertices
  /// (any order); null handle when absent.
  [[nodiscard]] Ent findEntity(Topo t, std::span<const Ent> verts) const;

  /// --- iteration ---------------------------------------------------------

  /// Forward iterator over live entities of one dimension, stable under
  /// concurrent reads (not under creation/deletion).
  class EntIter {
   public:
    EntIter(const Mesh* mesh, int dim, bool at_end);
    Ent operator*() const;
    EntIter& operator++();
    friend bool operator==(const EntIter& a, const EntIter& b) {
      return a.topo_pos_ == b.topo_pos_ && a.index_ == b.index_;
    }
    friend bool operator!=(const EntIter& a, const EntIter& b) {
      return !(a == b);
    }

   private:
    void settle();
    const Mesh* mesh_;
    std::span<const Topo> topos_;
    std::size_t topo_pos_;
    std::uint32_t index_;
  };

  struct EntRange {
    const Mesh* mesh;
    int d;
    [[nodiscard]] EntIter begin() const { return EntIter(mesh, d, false); }
    [[nodiscard]] EntIter end() const { return EntIter(mesh, d, true); }
  };
  /// Range over live entities of dimension d (iteration order is by type
  /// then index, deterministic for a given construction history).
  [[nodiscard]] EntRange entities(int d) const { return EntRange{this, d}; }

  /// Materialized list of live entities of dimension d.
  [[nodiscard]] std::vector<Ent> all(int d) const;

  /// --- tags & sets --------------------------------------------------------

  [[nodiscard]] Tags& tags() { return tags_; }
  [[nodiscard]] const Tags& tags() const { return tags_; }

  Set& createSet(const std::string& name);
  [[nodiscard]] Set* findSet(const std::string& name);
  void destroySet(const std::string& name);

 private:
  struct Pool {
    int stride_verts = 0;  ///< vertices per entity
    int stride_down = 0;   ///< one-level boundary entities per entity
    std::vector<Ent> verts;
    std::vector<Ent> down;
    std::vector<UpList> up;
    std::vector<gmi::Entity*> cls;
    std::vector<char> alive;
    std::vector<std::uint32_t> free_list;
    std::size_t live = 0;

    [[nodiscard]] std::uint32_t slots() const {
      return static_cast<std::uint32_t>(alive.size());
    }
  };

  Pool& pool(Topo t) { return pools_[static_cast<std::size_t>(t)]; }
  [[nodiscard]] const Pool& pool(Topo t) const {
    return pools_[static_cast<std::size_t>(t)];
  }

  /// Allocate a slot in t's pool and record verts/down/cls; registers this
  /// entity in the up lists of its one-level boundary.
  Ent allocate(Topo t, std::span<const Ent> vs, std::span<const Ent> down,
               gmi::Entity* cls);

  void buildCsr(Csr& c, int from, int to) const;

  std::array<Pool, kTopoCount> pools_;
  std::vector<Vec3> coords_;
  gmi::Model* model_;
  Tags tags_;
  std::unordered_map<std::string, Set> sets_;
  std::uint64_t topo_version_ = 0;
  std::uint64_t data_version_ = 0;
  /// Cached CSR views, one per (from, to) pair; rebuilt when stale.
  mutable std::array<std::unique_ptr<Csr>, 16> csr_;

  friend class EntIterAccess;
  /// integrity.hpp: byte-level access to pools/coords/CSR for the sectioned
  /// checksum ledger and the deterministic memory-fault injector.
  friend struct integrity::MeshAccess;
};

}  // namespace core

#endif  // PUMI_CORE_MESH_HPP
