#include "core/integrity.hpp"

#include <algorithm>
#include <cstring>

#include "common/crc32.hpp"
#include "core/topo.hpp"

namespace core::integrity {

namespace {

template <class T>
std::span<const std::byte> vecBytes(const std::vector<T>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(T)};
}

void appendU64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

}  // namespace

std::vector<MeshAccess::SectionRef> MeshAccess::sections(const Mesh& m) {
  std::vector<SectionRef> out;
  const std::uint64_t tv = m.topo_version_;
  const std::uint64_t dv = m.data_version_;
  if (!m.coords_.empty())
    out.push_back({"coords", tv, dv, vecBytes(m.coords_)});
  for (int t = 0; t < kTopoCount; ++t) {
    const auto& pool = m.pools_[static_cast<std::size_t>(t)];
    if (pool.alive.empty()) continue;
    const std::string base =
        std::string("pool:") + topoName(static_cast<Topo>(t));
    if (!pool.verts.empty())
      out.push_back({base + ":verts", tv, dv, vecBytes(pool.verts)});
    if (!pool.down.empty())
      out.push_back({base + ":down", tv, dv, vecBytes(pool.down)});
    out.push_back({base + ":alive", tv, dv, vecBytes(pool.alive)});
  }
  for (int from = 0; from <= 3; ++from) {
    for (int to = 0; to <= 3; ++to) {
      const auto& slot =
          m.csr_[static_cast<std::size_t>(from) * 4 + static_cast<std::size_t>(to)];
      if (!slot || slot->version != tv) continue;  // stale: never served again
      const std::string base = "csr:" + std::to_string(from) + "->" +
                               std::to_string(to);
      if (!slot->offsets.empty())
        out.push_back({base + ":offsets", slot->version, 0,
                       vecBytes(slot->offsets)});
      if (!slot->items.empty())
        out.push_back({base + ":items", slot->version, 0,
                       vecBytes(slot->items)});
    }
  }
  return out;
}

std::span<std::byte> MeshAccess::mutableSection(Mesh& m,
                                                const std::string& name) {
  for (const SectionRef& s : sections(m)) {
    if (s.name != name) continue;
    // m is mutable, so un-consting the enumerated view is well-defined.
    return {const_cast<std::byte*>(s.bytes.data()), s.bytes.size()};
  }
  return {};
}

void MeshAccess::invalidateCsr(Mesh& m) {
  for (auto& slot : m.csr_) slot.reset();
}

std::vector<std::byte> tagStream(const common::TagBase<Ent>* tag) {
  std::vector<Ent> items = tag->items();
  std::sort(items.begin(), items.end(),
            [](Ent a, Ent b) { return a.packed() < b.packed(); });
  std::vector<std::byte> out;
  for (Ent e : items) {
    const auto payload = tag->valueBytes(e);
    appendU64(out, e.packed());
    appendU64(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

Ledger::Section Ledger::makeSection(std::span<const std::byte> bytes,
                                    std::uint64_t va, std::uint64_t vb,
                                    bool external) {
  Section s;
  s.va = va;
  s.vb = vb;
  s.bytes = bytes.size();
  s.external = external;
  const std::size_t nblocks = (bytes.size() + kBlockBytes - 1) / kBlockBytes;
  s.blocks.reserve(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t at = b * kBlockBytes;
    const std::size_t n = std::min(kBlockBytes, bytes.size() - at);
    s.blocks.push_back(common::crc32c(bytes.data() + at, n));
  }
  s.crc = common::crc32c(
      reinterpret_cast<const std::byte*>(s.blocks.data()),
      s.blocks.size() * sizeof(std::uint32_t));
  bytes_hashed_ += bytes.size();
  ++sections_rehashed_;
  return s;
}

void Ledger::compare(const std::string& name, const Section& stored,
                     std::span<const std::byte> bytes,
                     std::vector<Mismatch>& out) {
  if (bytes.size() != stored.bytes) {
    // Container metadata diverged with no version bump: report the whole
    // stream (block CRCs cannot localize across different lengths).
    out.push_back({name, 0, std::max(bytes.size(), stored.bytes) - 1});
    return;
  }
  const Section now = makeSection(bytes, stored.va, stored.vb, stored.external);
  if (now.crc == stored.crc) return;
  std::size_t first = stored.blocks.size();
  std::size_t last = 0;
  for (std::size_t b = 0; b < stored.blocks.size(); ++b) {
    if (now.blocks[b] == stored.blocks[b]) continue;
    first = std::min(first, b);
    last = std::max(last, b);
  }
  if (first > last) return;  // CRC-of-CRCs collision-proofing; nothing local
  out.push_back({name, first * kBlockBytes,
                 std::min(last * kBlockBytes + kBlockBytes, bytes.size()) - 1});
}

void Ledger::seal(const Mesh& m) {
  std::vector<std::string> seen;
  auto upsert = [&](const std::string& name, std::uint64_t va,
                    std::uint64_t vb, std::span<const std::byte> bytes) {
    seen.push_back(name);
    auto it = sections_.find(name);
    if (it != sections_.end() && !it->second.external && it->second.va == va &&
        it->second.vb == vb)
      return;  // versions unchanged: the stored hash is still valid
    sections_[name] = makeSection(bytes, va, vb, false);
  };
  for (const auto& ref : MeshAccess::sections(m))
    upsert(ref.name, ref.va, ref.vb, ref.bytes);
  auto tags = m.tags().list();
  std::sort(tags.begin(), tags.end(),
            [](const auto* a, const auto* b) { return a->name() < b->name(); });
  for (const auto* tag : tags) {
    const auto stream = tagStream(tag);
    upsert("tag:" + tag->name(), tag->version(), 0, stream);
  }
  // Prune mesh-owned sections that vanished (destroyed tag, drained pool,
  // stale CSR view); external sections belong to the caller.
  std::sort(seen.begin(), seen.end());
  for (auto it = sections_.begin(); it != sections_.end();) {
    if (!it->second.external &&
        !std::binary_search(seen.begin(), seen.end(), it->first))
      it = sections_.erase(it);
    else
      ++it;
  }
  sealed_ = true;
}

void Ledger::audit(const Mesh& m, std::vector<Mismatch>& out) {
  if (!sealed_) return;
  auto check = [&](const std::string& name, std::uint64_t va, std::uint64_t vb,
                   std::span<const std::byte> bytes) {
    auto it = sections_.find(name);
    if (it == sections_.end()) return;          // new since the seal: legit
    if (it->second.va != va || it->second.vb != vb) return;  // legit write
    compare(name, it->second, bytes, out);
  };
  for (const auto& ref : MeshAccess::sections(m))
    check(ref.name, ref.va, ref.vb, ref.bytes);
  for (const auto* tag : m.tags().list()) {
    auto it = sections_.find("tag:" + tag->name());
    if (it == sections_.end() || it->second.va != tag->version()) continue;
    const auto stream = tagStream(tag);
    compare("tag:" + tag->name(), it->second, stream, out);
  }
}

void Ledger::sealExternal(const std::string& name,
                          std::span<const std::byte> bytes) {
  sections_[name] = makeSection(bytes, 0, 0, true);
  sealed_ = true;
}

void Ledger::auditExternal(const std::string& name,
                           std::span<const std::byte> bytes,
                           std::vector<Mismatch>& out) {
  auto it = sections_.find(name);
  if (it == sections_.end()) return;
  compare(name, it->second, bytes, out);
}

std::vector<std::string> Ledger::sectionNames() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [name, s] : sections_) out.push_back(name);
  return out;
}

std::size_t Ledger::coveredBytes() const {
  std::size_t n = 0;
  for (const auto& [name, s] : sections_) n += s.bytes;
  return n;
}

}  // namespace core::integrity
