#ifndef PUMI_CORE_ENTITY_HPP
#define PUMI_CORE_ENTITY_HPP

/// \file entity.hpp
/// \brief Mesh entity handles.
///
/// A mesh entity M^d_i is uniquely identified by its handle (paper Sec. II).
/// A handle encodes the entity's topological type and its index within that
/// type's storage pool; it is a trivially copyable 8-byte value suitable for
/// hashing, messaging and tag keys.

#include <cstdint>
#include <functional>
#include <string>

namespace core {

/// Topological entity types. Order groups by dimension.
enum class Topo : std::uint8_t {
  Vertex = 0,
  Edge = 1,
  Tri = 2,
  Quad = 3,
  Tet = 4,
  Hex = 5,
  Prism = 6,
  Pyramid = 7,
};
inline constexpr int kTopoCount = 8;

/// Handle to a mesh entity: (type, pool index). Default-constructed handles
/// are null.
class Ent {
 public:
  static constexpr std::uint32_t kNullIndex = 0xffffffffu;

  constexpr Ent() = default;
  constexpr Ent(Topo topo, std::uint32_t index) : topo_(topo), index_(index) {}

  [[nodiscard]] constexpr Topo topo() const { return topo_; }
  [[nodiscard]] constexpr std::uint32_t index() const { return index_; }
  [[nodiscard]] constexpr bool null() const { return index_ == kNullIndex; }
  constexpr explicit operator bool() const { return !null(); }

  friend constexpr bool operator==(const Ent& a, const Ent& b) {
    return a.topo_ == b.topo_ && a.index_ == b.index_;
  }
  friend constexpr bool operator!=(const Ent& a, const Ent& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const Ent& a, const Ent& b) {
    if (a.topo_ != b.topo_) return a.topo_ < b.topo_;
    return a.index_ < b.index_;
  }

  /// Packed 64-bit representation (for hashing and serialization of
  /// part-local handles).
  [[nodiscard]] constexpr std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(topo_) << 32) | index_;
  }
  static constexpr Ent unpack(std::uint64_t bits) {
    return Ent(static_cast<Topo>(bits >> 32),
               static_cast<std::uint32_t>(bits & 0xffffffffu));
  }

 private:
  Topo topo_ = Topo::Vertex;
  std::uint32_t index_ = kNullIndex;
};

struct EntHash {
  std::size_t operator()(const Ent& e) const {
    // splitmix-style mix of the packed bits.
    std::uint64_t z = e.packed() + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace core

#endif  // PUMI_CORE_ENTITY_HPP
