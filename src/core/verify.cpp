#include "core/verify.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

#include "core/measure.hpp"
#include "core/topo.hpp"
#include "gmi/model.hpp"

namespace core {

namespace {

[[noreturn]] void fail(const std::string& what, Ent e) {
  std::ostringstream os;
  os << "mesh verify failed: " << what << " [" << topoName(e.topo()) << " #"
     << e.index() << "]";
  throw std::logic_error(os.str());
}

}  // namespace

void verify(const Mesh& m, const VerifyOptions& opts) {
  std::array<Ent, kMaxDown> buf{};
  for (int d = 0; d <= 3; ++d) {
    for (Ent e : m.entities(d)) {
      if (!m.alive(e)) fail("iterator yielded dead entity", e);

      // Canonical vertices exist and are alive.
      if (d > 0) {
        const auto vs = m.verts(e);
        if (static_cast<int>(vs.size()) != topoVertexCount(e.topo()))
          fail("wrong canonical vertex count", e);
        for (Ent v : vs)
          if (!m.alive(v)) fail("dead canonical vertex", e);
        // No repeated vertices.
        std::array<Ent, 8> sorted{};
        std::copy(vs.begin(), vs.end(), sorted.begin());
        std::sort(sorted.begin(), sorted.begin() + vs.size());
        if (std::adjacent_find(sorted.begin(), sorted.begin() + vs.size()) !=
            sorted.begin() + vs.size())
          fail("repeated canonical vertex", e);
        // This entity is findable by its vertices, and unique.
        if (m.findEntity(e.topo(), vs) != e)
          fail("entity not findable by its vertices (duplicate?)", e);
      }

      // One-level down entities match the canonical templates and link back.
      if (d > 0) {
        const int nb = m.downward(e, d - 1, buf.data());
        if (nb != topoBoundaryCount(e.topo(), d - 1))
          fail("wrong one-level boundary count", e);
        const auto vs = m.verts(e);
        for (int i = 0; i < nb; ++i) {
          const Ent b = buf[static_cast<std::size_t>(i)];
          if (!m.alive(b)) fail("dead boundary entity", e);
          if (topoDim(b.topo()) != d - 1) fail("boundary dim mismatch", e);
          // Boundary entity vertices match the template (as a set).
          const auto idxs = topoBoundaryVerts(e.topo(), d - 1, i);
          std::array<Ent, 4> expect{};
          for (std::size_t k = 0; k < idxs.size(); ++k)
            expect[k] = vs[idxs[k]];
          auto bvs = d - 1 == 0
                         ? std::span<const Ent>{&b, 1}
                         : m.verts(b);
          std::array<Ent, 4> got{};
          std::copy(bvs.begin(), bvs.end(), got.begin());
          std::sort(expect.begin(), expect.begin() + bvs.size());
          std::sort(got.begin(), got.begin() + bvs.size());
          if (!std::equal(expect.begin(), expect.begin() + bvs.size(),
                          got.begin()))
            fail("boundary entity does not match canonical template", e);
          // Upward symmetry.
          if (!m.up(b).contains(e))
            fail("boundary entity missing upward link", e);
        }
      }

      // Upward lists point at live entities of dimension d+1 that list e
      // among their one-level boundary.
      for (Ent u : m.up(e)) {
        if (!m.alive(u)) fail("dead upward entity", e);
        if (topoDim(u.topo()) != d + 1) fail("upward dim mismatch", e);
        const int nb = m.downward(u, d, buf.data());
        if (std::find(buf.begin(), buf.begin() + nb, e) == buf.begin() + nb)
          fail("upward entity does not list this entity downward", e);
      }

      if (opts.check_classification) {
        if (gmi::Entity* c = m.classification(e)) {
          if (c->dim() < d)
            fail("classification dimension below entity dimension", e);
        }
      }
      if (opts.check_volumes && d == 3) {
        if (measure(m, e) <= 0.0) fail("non-positive element volume", e);
      }
    }
  }
}

}  // namespace core
