#include "core/tagio.hpp"

#include <cstdint>
#include <typeindex>

namespace core {

namespace {

enum class TagType : std::uint8_t { Int = 0, Long = 1, Double = 2 };

template <typename T>
void packTyped(const core::Mesh& mesh, core::Mesh::Tag tag, core::Ent e,
               TagType code, pcu::OutBuffer& buf) {
  buf.packString(tag->name());
  buf.pack(code);
  buf.pack<std::uint32_t>(static_cast<std::uint32_t>(tag->components()));
  buf.packVector(mesh.tags().get<T>(tag, e));
}

template <typename T>
void unpackTyped(core::Mesh& mesh, core::Ent e, const std::string& name,
                 std::uint32_t components, pcu::InBuffer& buf) {
  auto values = buf.unpackVector<T>();
  core::Mesh::Tag tag = mesh.tags().find(name);
  if (tag == nullptr) tag = mesh.tags().create<T>(name, components);
  mesh.tags().set<T>(tag, e, std::move(values));
}

}  // namespace

void packTags(const core::Mesh& mesh, core::Ent e, pcu::OutBuffer& buf,
              const std::string& only) {
  std::uint32_t count = 0;
  for (auto* tag : mesh.tags().list()) {
    if (!tag->has(e)) continue;
    if (!only.empty() && tag->name() != only) continue;
    if (tag->type() == std::type_index(typeid(int)) ||
        tag->type() == std::type_index(typeid(long)) ||
        tag->type() == std::type_index(typeid(double)))
      ++count;
  }
  buf.pack(count);
  for (auto* tag : mesh.tags().list()) {
    if (!tag->has(e)) continue;
    if (!only.empty() && tag->name() != only) continue;
    if (tag->type() == std::type_index(typeid(int)))
      packTyped<int>(mesh, tag, e, TagType::Int, buf);
    else if (tag->type() == std::type_index(typeid(long)))
      packTyped<long>(mesh, tag, e, TagType::Long, buf);
    else if (tag->type() == std::type_index(typeid(double)))
      packTyped<double>(mesh, tag, e, TagType::Double, buf);
  }
}

void skipTags(pcu::InBuffer& buf) {
  const auto count = buf.unpack<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    (void)buf.unpackString();
    const auto code = buf.unpack<TagType>();
    (void)buf.unpack<std::uint32_t>();
    switch (code) {
      case TagType::Int:
        (void)buf.unpackVector<int>();
        break;
      case TagType::Long:
        (void)buf.unpackVector<long>();
        break;
      case TagType::Double:
        (void)buf.unpackVector<double>();
        break;
    }
  }
}

void unpackTags(core::Mesh& mesh, core::Ent e, pcu::InBuffer& buf) {
  const auto count = buf.unpack<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = buf.unpackString();
    const auto code = buf.unpack<TagType>();
    const auto components = buf.unpack<std::uint32_t>();
    switch (code) {
      case TagType::Int:
        unpackTyped<int>(mesh, e, name, components, buf);
        break;
      case TagType::Long:
        unpackTyped<long>(mesh, e, name, components, buf);
        break;
      case TagType::Double:
        unpackTyped<double>(mesh, e, name, components, buf);
        break;
    }
  }
}

}  // namespace core
