#ifndef PUMI_CORE_MESHIO_HPP
#define PUMI_CORE_MESHIO_HPP

/// \file meshio.hpp
/// \brief Native binary serialization of a serial mesh.
///
/// Round-trips vertices (coordinates, classification), elements (topology,
/// canonical vertices, classification) and transportable tag data; lower-
/// dimension entities and their classification are re-derived on load from
/// the element closure, then overridden where the file recorded an
/// explicit classification. Classification references the model by
/// (dim, tag), so the same gmi::Model (or an equivalent one) must be
/// supplied at load time.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/mesh.hpp"

namespace gmi {
class Model;
}

namespace core {

/// Serialize `mesh` to bytes (the writeMesh file format, no file involved).
/// This is what the failure-tolerance buddy journal streams between ranks.
std::vector<std::byte> meshToBytes(const Mesh& mesh);

/// Rebuild a mesh from meshToBytes output, classifying against `model`.
/// Throws std::runtime_error on format mismatch.
std::unique_ptr<Mesh> meshFromBytes(std::vector<std::byte> bytes,
                                    gmi::Model* model);

/// Write `mesh` to `path`. Throws std::runtime_error on I/O failure.
void writeMesh(const Mesh& mesh, const std::string& path);

/// Read a mesh written by writeMesh, classifying against `model`.
/// Throws std::runtime_error on I/O failure or format mismatch.
std::unique_ptr<Mesh> readMesh(const std::string& path, gmi::Model* model);

}  // namespace core

#endif  // PUMI_CORE_MESHIO_HPP
