#ifndef PUMI_CORE_VERIFY_HPP
#define PUMI_CORE_VERIFY_HPP

/// \file verify.hpp
/// \brief Structural validation of a mesh database instance.
///
/// verify() walks the whole representation and checks the invariants the
/// rest of the library relies on. It throws std::logic_error with a
/// description of the first violation. Used liberally in tests and after
/// every distributed operation (migration, ghosting, adaptation) in debug
/// runs.

#include "core/mesh.hpp"

namespace core {

struct VerifyOptions {
  /// Also check that every 3D element has positive decomposed volume.
  bool check_volumes = false;
  /// Also check classification: an entity's classification dimension must
  /// be >= its own dimension (a region cannot classify on a model edge).
  bool check_classification = true;
};

/// Throws std::logic_error describing the first violated invariant:
///  - downward/upward adjacency symmetry,
///  - one-level down lists consistent with canonical vertex templates,
///  - no duplicate entities over the same vertex set,
///  - every boundary entity alive,
///  - classification dimension sanity (optional),
///  - positive element volumes (optional).
void verify(const Mesh& m, const VerifyOptions& opts = {});

}  // namespace core

#endif  // PUMI_CORE_VERIFY_HPP
