#include "core/topo.hpp"

#include <array>
#include <cassert>

namespace core {

namespace {

// --- edge templates: pairs of canonical vertex indices -------------------

constexpr int kTriEdges[3][2] = {{0, 1}, {1, 2}, {2, 0}};
constexpr int kQuadEdges[4][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
constexpr int kTetEdges[6][2] = {{0, 1}, {1, 2}, {2, 0},
                                 {0, 3}, {1, 3}, {2, 3}};
constexpr int kHexEdges[12][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                                  {4, 5}, {5, 6}, {6, 7}, {7, 4},
                                  {0, 4}, {1, 5}, {2, 6}, {3, 7}};
constexpr int kPrismEdges[9][2] = {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5},
                                   {5, 3}, {0, 3}, {1, 4}, {2, 5}};
constexpr int kPyramidEdges[8][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                                     {0, 4}, {1, 4}, {2, 4}, {3, 4}};

// --- face templates: type + canonical vertex indices ----------------------

struct FaceSpec {
  Topo topo;
  int nverts;
  int verts[4];
};

constexpr FaceSpec kTetFaces[4] = {
    {Topo::Tri, 3, {0, 1, 2, -1}},
    {Topo::Tri, 3, {0, 1, 3, -1}},
    {Topo::Tri, 3, {1, 2, 3, -1}},
    {Topo::Tri, 3, {2, 0, 3, -1}},
};
constexpr FaceSpec kHexFaces[6] = {
    {Topo::Quad, 4, {0, 1, 2, 3}}, {Topo::Quad, 4, {4, 5, 6, 7}},
    {Topo::Quad, 4, {0, 1, 5, 4}}, {Topo::Quad, 4, {1, 2, 6, 5}},
    {Topo::Quad, 4, {2, 3, 7, 6}}, {Topo::Quad, 4, {3, 0, 4, 7}},
};
constexpr FaceSpec kPrismFaces[5] = {
    {Topo::Tri, 3, {0, 1, 2, -1}},  {Topo::Tri, 3, {3, 4, 5, -1}},
    {Topo::Quad, 4, {0, 1, 4, 3}},  {Topo::Quad, 4, {1, 2, 5, 4}},
    {Topo::Quad, 4, {2, 0, 3, 5}},
};
constexpr FaceSpec kPyramidFaces[5] = {
    {Topo::Quad, 4, {0, 1, 2, 3}}, {Topo::Tri, 3, {0, 1, 4, -1}},
    {Topo::Tri, 3, {1, 2, 4, -1}}, {Topo::Tri, 3, {2, 3, 4, -1}},
    {Topo::Tri, 3, {3, 0, 4, -1}},
};

constexpr std::array<Topo, 1> kDim0 = {Topo::Vertex};
constexpr std::array<Topo, 1> kDim1 = {Topo::Edge};
constexpr std::array<Topo, 2> kDim2 = {Topo::Tri, Topo::Quad};
constexpr std::array<Topo, 4> kDim3 = {Topo::Tet, Topo::Hex, Topo::Prism,
                                       Topo::Pyramid};

const int (*edgeTable(Topo t))[2] {
  switch (t) {
    case Topo::Tri: return kTriEdges;
    case Topo::Quad: return kQuadEdges;
    case Topo::Tet: return kTetEdges;
    case Topo::Hex: return kHexEdges;
    case Topo::Prism: return kPrismEdges;
    case Topo::Pyramid: return kPyramidEdges;
    default: return nullptr;
  }
}

const FaceSpec* faceTable(Topo t) {
  switch (t) {
    case Topo::Tet: return kTetFaces;
    case Topo::Hex: return kHexFaces;
    case Topo::Prism: return kPrismFaces;
    case Topo::Pyramid: return kPyramidFaces;
    default: return nullptr;
  }
}

}  // namespace

int topoDim(Topo t) {
  switch (t) {
    case Topo::Vertex: return 0;
    case Topo::Edge: return 1;
    case Topo::Tri:
    case Topo::Quad: return 2;
    case Topo::Tet:
    case Topo::Hex:
    case Topo::Prism:
    case Topo::Pyramid: return 3;
  }
  assert(false && "invalid topo");
  return -1;
}

int topoVertexCount(Topo t) {
  switch (t) {
    case Topo::Vertex: return 1;
    case Topo::Edge: return 2;
    case Topo::Tri: return 3;
    case Topo::Quad: return 4;
    case Topo::Tet: return 4;
    case Topo::Hex: return 8;
    case Topo::Prism: return 6;
    case Topo::Pyramid: return 5;
  }
  assert(false && "invalid topo");
  return 0;
}

int topoBoundaryCount(Topo t, int d) {
  [[maybe_unused]] const int dim = topoDim(t);
  assert(d >= 0 && d < dim);
  if (d == 0) return topoVertexCount(t);
  if (d == 1) {
    switch (t) {
      case Topo::Tri: return 3;
      case Topo::Quad: return 4;
      case Topo::Tet: return 6;
      case Topo::Hex: return 12;
      case Topo::Prism: return 9;
      case Topo::Pyramid: return 8;
      default: break;
    }
  }
  if (d == 2) {
    switch (t) {
      case Topo::Tet: return 4;
      case Topo::Hex: return 6;
      case Topo::Prism: return 5;
      case Topo::Pyramid: return 5;
      default: break;
    }
  }
  assert(false && "invalid boundary query");
  return 0;
}

Topo topoBoundaryTopo(Topo t, int d, int i) {
  assert(i >= 0 && i < topoBoundaryCount(t, d));
  if (d == 0) return Topo::Vertex;
  if (d == 1) return Topo::Edge;
  return faceTable(t)[i].topo;
}

std::span<const int> topoBoundaryVerts(Topo t, int d, int i) {
  assert(i >= 0 && i < topoBoundaryCount(t, d));
  if (d == 0) {
    static constexpr int kSelf[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    return {&kSelf[i], 1};
  }
  if (d == 1) {
    const auto* edges = edgeTable(t);
    return {edges[i], 2};
  }
  const FaceSpec& f = faceTable(t)[i];
  return {f.verts, static_cast<std::size_t>(f.nverts)};
}

const char* topoName(Topo t) {
  switch (t) {
    case Topo::Vertex: return "vertex";
    case Topo::Edge: return "edge";
    case Topo::Tri: return "tri";
    case Topo::Quad: return "quad";
    case Topo::Tet: return "tet";
    case Topo::Hex: return "hex";
    case Topo::Prism: return "prism";
    case Topo::Pyramid: return "pyramid";
  }
  return "invalid";
}

std::span<const Topo> toposOfDim(int d) {
  switch (d) {
    case 0: return kDim0;
    case 1: return kDim1;
    case 2: return kDim2;
    case 3: return kDim3;
    default: return {};
  }
}

}  // namespace core
