#ifndef PUMI_CORE_VTK_HPP
#define PUMI_CORE_VTK_HPP

/// \file vtk.hpp
/// \brief Legacy-VTK ASCII output for visualization of meshes and per-cell
/// scalar data (part ids, size fields, imbalance indicators).

#include <string>
#include <unordered_map>
#include <vector>

#include "core/mesh.hpp"

namespace core {

/// One named per-element scalar array.
struct CellScalar {
  std::string name;
  std::unordered_map<Ent, double, EntHash> values;  ///< keyed by element
};

/// Write the elements (highest-dimension entities) of `m` as an unstructured
/// grid. Throws std::runtime_error when the file cannot be written.
void writeVtk(const Mesh& m, const std::string& path,
              const std::vector<CellScalar>& cell_data = {});

}  // namespace core

#endif  // PUMI_CORE_VTK_HPP
