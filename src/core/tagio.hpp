#ifndef PUMI_CORE_TAGIO_HPP
#define PUMI_CORE_TAGIO_HPP

/// \file tagio.hpp (core)
/// \brief Serialization of mesh tag values for entity migration/ghosting.
///
/// Tags of element type int, long and double (any component count) travel
/// with their entities during migration and ghosting; other element types
/// are part-local and are not transported (documented limitation matching
/// the ITAPS basic tag types).

#include "core/mesh.hpp"
#include "pcu/buffer.hpp"

namespace core {

/// Append all transportable tag values attached to `e` in `mesh`. When
/// `only` is non-empty, restrict to the tag of that name.
void packTags(const core::Mesh& mesh, core::Ent e, pcu::OutBuffer& buf,
              const std::string& only = "");

/// Read tag values written by packTags and attach them to `e` in `mesh`,
/// creating same-named tags as needed.
void unpackTags(core::Mesh& mesh, core::Ent e, pcu::InBuffer& buf);

/// Advance past a packTags record without applying it.
void skipTags(pcu::InBuffer& buf);

}  // namespace core

#endif  // PUMI_CORE_TAGIO_HPP
