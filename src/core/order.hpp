#ifndef PUMI_CORE_ORDER_HPP
#define PUMI_CORE_ORDER_HPP

/// \file order.hpp
/// \brief Locality orderings over flat index arrays (RCM + derived orders).
///
/// Reverse Cuthill-McKee vertex ordering and the min-vertex-rank element
/// ordering derived from it, expressed over flat vectors indexed by pool
/// slot — no hash maps on the hot path. The kernels live in core (not
/// part/) so that dist::PartedMesh::distribute can lay parts out in
/// locality order at creation time without a layering cycle (part links
/// dist); part/reorder keeps its public Ordering API as a thin wrapper.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/mesh.hpp"

namespace core::order {

/// Sentinel rank for dead pool slots in ranksOf().
inline constexpr std::uint32_t kNoRank = ~std::uint32_t{0};

/// Reverse Cuthill-McKee order of the live vertices: BFS from a
/// pseudo-peripheral seed (the last vertex of a BFS from the first) with
/// ascending-degree neighbour tie-break, then reversed. Restarts on
/// disconnected components. Deterministic for a given mesh.
std::vector<Ent> rcmVertices(const Mesh& m);

/// Rank lookup for a vertex ordering: flat vector indexed by vertex pool
/// slot (dead/unlisted slots hold kNoRank).
std::vector<std::uint32_t> ranksOf(const Mesh& m,
                                   const std::vector<Ent>& vorder);

/// Live entities of dimension d sorted ascending by their minimum vertex
/// rank under `vranks` (stable: ties keep type-then-slot iteration order),
/// giving traversals of any dimension the vertex ordering's locality.
std::vector<Ent> byMinVertexRank(const Mesh& m, int d,
                                 const std::vector<std::uint32_t>& vranks);

/// Bandwidth of the vertex-edge graph under `vranks`: max |rank(a) -
/// rank(b)| over mesh edges. RCM exists to shrink this.
std::size_t bandwidth(const Mesh& m, const std::vector<std::uint32_t>& vranks);

}  // namespace core::order

#endif  // PUMI_CORE_ORDER_HPP
