#ifndef PUMI_CORE_INTEGRITY_HPP
#define PUMI_CORE_INTEGRITY_HPP

/// \file integrity.hpp
/// \brief Sectioned in-memory checksum ledger for one mesh (silent-
/// corruption armor, detection side).
///
/// The fault stack guards every *boundary* — message CRCs, storage CRCs,
/// rank death — but the live mesh state those boundaries hand off is
/// unguarded: one flipped bit in an entity pool, tag payload, or adjacency
/// array propagates silently into checkpoints and journals, checksummed as
/// if it were truth. This layer extends the verify()-at-commit-points
/// tradition from topological invariants to byte-level integrity.
///
/// A Ledger divides a mesh's state into named *sections* — each entity
/// pool's verts/down/alive arrays, the vertex coordinates, every tag's
/// payload stream, each current CSR adjacency view — and records a
/// CRC-32C per section plus per-block CRCs for byte-range localization.
/// Sections are re-hashed lazily: each is keyed on the version counters
/// that every legitimate write path already bumps (Mesh::topoVersion /
/// dataVersion, TagBase::version), so seal() skips unchanged sections and
/// audit() can classify a hash mismatch precisely: *same versions, different
/// bytes* is corruption, never a legitimate write.
///
/// Detection never dereferences mesh state — it only hashes raw bytes — so
/// a flipped entity handle or alive flag cannot crash the audit; repair
/// (dist/integrity.hpp) replaces state wholesale from replicas.
///
/// The contract callers must keep: between a seal() and the next audit(),
/// mesh state changes only through the version-bumping mutators (or not at
/// all). The distributed layers already live by this rule — all mutation
/// happens inside transactional operations, and the armor seals at every
/// commit point.

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/mesh.hpp"

namespace core::integrity {

/// Per-block CRC granularity: a mismatch is localized to a byte range no
/// wider than this (memory overhead: 4 bytes of ledger per block).
inline constexpr std::size_t kBlockBytes = 256;

/// One detected corruption: the section and the byte range (within the
/// section's canonical byte stream, inclusive) the damage localizes to.
struct Mismatch {
  std::string section;
  std::size_t first_byte = 0;
  std::size_t last_byte = 0;

  friend bool operator==(const Mismatch& a, const Mismatch& b) {
    return a.section == b.section && a.first_byte == b.first_byte &&
           a.last_byte == b.last_byte;
  }
};

/// Byte-level access to a mesh's hashable state, for the ledger and the
/// deterministic memory-fault injector (dist/integrity.hpp). Friend of
/// Mesh; the only non-const entry points are the fault-injection span and
/// the CSR invalidation used by tier-1 repair.
struct MeshAccess {
  /// One contiguous hashable section of a mesh.
  struct SectionRef {
    std::string name;
    std::uint64_t va = 0;  ///< governing version counter (topo/tag/CSR)
    std::uint64_t vb = 0;  ///< second governing counter (dataVersion) or 0
    std::span<const std::byte> bytes;
  };

  /// Enumerate the mesh's contiguous sections in deterministic order:
  /// "coords", then "pool:<topo>:{verts,down,alive}" per non-empty pool,
  /// then "csr:<from>-><to>:{offsets,items}" per *current* CSR view (stale
  /// views are dead weight, never served again, and are skipped).
  /// Excluded by design: upward adjacency (derived, heap-backed),
  /// classification (process-local pointers, guarded by verify()),
  /// free lists (derived bookkeeping).
  static std::vector<SectionRef> sections(const Mesh& m);

  /// Writable bytes of one contiguous section, for fault injection; empty
  /// when no section has that name.
  static std::span<std::byte> mutableSection(Mesh& m, const std::string& name);

  /// Drop every cached CSR view (tier-1 repair: the next adjacency query
  /// rebuilds from the pools).
  static void invalidateCsr(Mesh& m);
};

/// Canonical byte stream of one tag's payload: items sorted by packed
/// handle, each as (packed handle, payload byte count, payload bytes).
/// Deterministic for a given tag content, independent of hash-map order.
std::vector<std::byte> tagStream(const common::TagBase<Ent>* tag);

/// The sectioned checksum ledger of one mesh (one per part).
class Ledger {
 public:
  /// Record/refresh the hash of every current section. Sections whose
  /// governing versions are unchanged since the last seal are skipped
  /// (their hash is still valid); sections that vanished (destroyed tag,
  /// stale CSR) are pruned.
  void seal(const Mesh& m);

  /// Verify every section that should be byte-identical to its sealed
  /// state: versions unchanged but bytes differ is corruption, appended to
  /// `out` with block-level byte-range localization. Sections with changed
  /// versions (legitimate writes since the seal) and sections added or
  /// removed since the seal are skipped — the next seal() re-keys them.
  void audit(const Mesh& m, std::vector<Mismatch>& out);

  /// External sections: state owned by a higher layer (the part's
  /// remote/ghost tables), serialized canonically by the caller. Always
  /// re-hashed at seal (no version counter gates them); audited by direct
  /// byte comparison — callers guarantee no legitimate writes happen
  /// between boundaries.
  void sealExternal(const std::string& name, std::span<const std::byte> bytes);
  void auditExternal(const std::string& name, std::span<const std::byte> bytes,
                     std::vector<Mismatch>& out);

  [[nodiscard]] bool sealed() const { return sealed_; }
  void reset() {
    sections_.clear();
    sealed_ = false;
  }

  /// Section names currently sealed, sorted (diagnostics, tests).
  [[nodiscard]] std::vector<std::string> sectionNames() const;
  /// Total bytes covered by the current seal.
  [[nodiscard]] std::size_t coveredBytes() const;

  /// Cumulative work counters (for trace/bench).
  [[nodiscard]] std::uint64_t bytesHashed() const { return bytes_hashed_; }
  [[nodiscard]] std::uint64_t sectionsRehashed() const {
    return sections_rehashed_;
  }

 private:
  struct Section {
    std::uint64_t va = 0;
    std::uint64_t vb = 0;
    std::size_t bytes = 0;
    std::uint32_t crc = 0;                ///< crc32c over the block CRCs
    std::vector<std::uint32_t> blocks;    ///< per-kBlockBytes CRC32Cs
    bool external = false;
  };

  Section makeSection(std::span<const std::byte> bytes, std::uint64_t va,
                      std::uint64_t vb, bool external);
  /// Compare `bytes` against a stored section; on mismatch append a
  /// Mismatch for `name` localizing the differing block range.
  void compare(const std::string& name, const Section& stored,
               std::span<const std::byte> bytes, std::vector<Mismatch>& out);

  std::map<std::string, Section> sections_;
  bool sealed_ = false;
  std::uint64_t bytes_hashed_ = 0;
  std::uint64_t sections_rehashed_ = 0;
};

}  // namespace core::integrity

#endif  // PUMI_CORE_INTEGRITY_HPP
