#include "core/measure.hpp"

#include <array>

namespace core {

Vec3 centroid(const Mesh& m, Ent e) {
  if (e.topo() == Topo::Vertex) return m.point(e);
  Vec3 sum{};
  const auto vs = m.verts(e);
  for (Ent v : vs) sum += m.point(v);
  return sum / static_cast<double>(vs.size());
}

double tetVolume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  return common::dot(common::cross(b - a, c - a), d - a) / 6.0;
}

namespace {

double faceArea(const Mesh& m, std::span<const Ent> vs) {
  // Fan triangulation from vs[0].
  double area = 0.0;
  const Vec3 p0 = m.point(vs[0]);
  for (std::size_t i = 1; i + 1 < vs.size(); ++i) {
    const Vec3 p1 = m.point(vs[i]);
    const Vec3 p2 = m.point(vs[i + 1]);
    area += 0.5 * common::norm(common::cross(p1 - p0, p2 - p0));
  }
  return area;
}

double regionVolume(const Mesh& m, Ent e) {
  const auto vs = m.verts(e);
  auto p = [&](int i) { return m.point(vs[static_cast<std::size_t>(i)]); };
  switch (e.topo()) {
    case Topo::Tet:
      return std::fabs(tetVolume(p(0), p(1), p(2), p(3)));
    case Topo::Pyramid:
      // Base quad (0,1,2,3), apex 4: two tets.
      return std::fabs(tetVolume(p(0), p(1), p(2), p(4))) +
             std::fabs(tetVolume(p(0), p(2), p(3), p(4)));
    case Topo::Prism:
      // (0,1,2 | 3,4,5): standard three-tet decomposition.
      return std::fabs(tetVolume(p(0), p(1), p(2), p(3))) +
             std::fabs(tetVolume(p(1), p(2), p(3), p(4))) +
             std::fabs(tetVolume(p(2), p(3), p(4), p(5)));
    case Topo::Hex:
      // Bottom 0-3, top 4-7: five-tet decomposition.
      return std::fabs(tetVolume(p(0), p(1), p(3), p(4))) +
             std::fabs(tetVolume(p(1), p(2), p(3), p(6))) +
             std::fabs(tetVolume(p(1), p(5), p(6), p(4))) +
             std::fabs(tetVolume(p(3), p(6), p(7), p(4))) +
             std::fabs(tetVolume(p(1), p(3), p(6), p(4)));
    default:
      return 0.0;
  }
}

}  // namespace

double measure(const Mesh& m, Ent e) {
  switch (topoDim(e.topo())) {
    case 0:
      return 0.0;
    case 1: {
      const auto vs = m.verts(e);
      return common::distance(m.point(vs[0]), m.point(vs[1]));
    }
    case 2:
      return faceArea(m, m.verts(e));
    case 3:
      return regionVolume(m, e);
    default:
      return 0.0;
  }
}

common::Box3 bounds(const Mesh& m) {
  common::Box3 box;
  for (Ent v : m.entities(0)) box.include(m.point(v));
  return box;
}

}  // namespace core
