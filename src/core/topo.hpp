#ifndef PUMI_CORE_TOPO_HPP
#define PUMI_CORE_TOPO_HPP

/// \file topo.hpp
/// \brief Canonical topology templates for all supported element shapes.
///
/// For every topological type these tables answer: its dimension, how many
/// vertices it has, how many boundary entities of each lower dimension it
/// has, the type of each boundary entity, and which of the element's
/// vertices (in canonical order) each boundary entity uses. All mesh
/// construction and downward adjacency derivation flows through these
/// tables, which follow the usual finite-element conventions (bottom ring
/// then top ring for hexes, base then apex for pyramids, ...).

#include <span>

#include "core/entity.hpp"

namespace core {

/// Dimension of a topological type (0 for vertices ... 3 for regions).
[[nodiscard]] int topoDim(Topo t);

/// Number of vertices in the canonical template.
[[nodiscard]] int topoVertexCount(Topo t);

/// Number of boundary entities of dimension d (1 <= d < topoDim(t)); for
/// d == 0 this equals topoVertexCount.
[[nodiscard]] int topoBoundaryCount(Topo t, int d);

/// Type of the i-th boundary entity of dimension d.
[[nodiscard]] Topo topoBoundaryTopo(Topo t, int d, int i);

/// Canonical vertex indices (into the element's vertex list) of the i-th
/// boundary entity of dimension d.
[[nodiscard]] std::span<const int> topoBoundaryVerts(Topo t, int d, int i);

/// Human-readable type name ("tet", "quad", ...).
[[nodiscard]] const char* topoName(Topo t);

/// Types of a given dimension, in enum order.
[[nodiscard]] std::span<const Topo> toposOfDim(int d);

}  // namespace core

#endif  // PUMI_CORE_TOPO_HPP
