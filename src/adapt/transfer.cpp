#include "adapt/transfer.hpp"

#include <typeindex>

namespace adapt {

LinearTransfer::LinearTransfer(std::vector<std::string> fields)
    : fields_(std::move(fields)) {}

bool LinearTransfer::wants(const std::string& tag_name) const {
  if (tag_name.rfind("field:", 0) != 0) return false;
  if (fields_.empty()) return true;
  const std::string bare = tag_name.substr(6);
  for (const auto& f : fields_)
    if (f == bare) return true;
  return false;
}

void LinearTransfer::onSplit(core::Mesh& mesh, core::Ent mid, core::Ent a,
                             core::Ent b) {
  for (auto* tag : mesh.tags().list()) {
    if (!wants(tag->name())) continue;
    if (tag->type() != std::type_index(typeid(double))) continue;
    if (!tag->has(a) || !tag->has(b)) continue;
    const auto& va = mesh.tags().get<double>(tag, a);
    const auto& vb = mesh.tags().get<double>(tag, b);
    std::vector<double> vm(va.size());
    for (std::size_t i = 0; i < va.size(); ++i) vm[i] = 0.5 * (va[i] + vb[i]);
    mesh.tags().set<double>(tag, mid, std::move(vm));
  }
}

void LinearTransfer::onCollapse(core::Mesh&, core::Ent, core::Ent) {
  // The kept vertex keeps its nodal value: the linear interpolant of the
  // coarser mesh agrees with the fine one at surviving nodes.
}

}  // namespace adapt
