#ifndef PUMI_ADAPT_COLLAPSE_HPP
#define PUMI_ADAPT_COLLAPSE_HPP

/// \file collapse.hpp
/// \brief Edge collapse, the coarsening counterpart of the edge split.
///
/// Collapsing edge (a, b) removes vertex b: elements containing both a and
/// b degenerate and are deleted; elements containing only b are rebuilt
/// with a substituted for b. The collapse is refused (returning false,
/// leaving the mesh untouched) when it would:
///   - remove a vertex off its geometric feature: b must classify on the
///     same model entity as the edge itself (b "slides" along the feature
///     onto a),
///   - invert or degenerate an element (sign/magnitude check on every
///     rebuilt element's measure),
///   - create an element that already exists.
/// Element tags are carried to the rebuilt elements; classification of
/// rebuilt boundary entities is inherited from their pre-collapse
/// counterparts.

#include "adapt/sizefield.hpp"
#include "adapt/transfer.hpp"
#include "core/mesh.hpp"

namespace adapt {

/// Try to collapse `edge`, removing `remove` (one of its vertices) onto
/// the other. Returns true on success.
bool collapseEdge(core::Mesh& mesh, core::Ent edge, core::Ent remove,
                  SolutionTransfer* transfer = nullptr);

/// True when collapsing `edge` by removing `remove` passes all validity
/// checks (classification and geometry), without modifying the mesh.
bool canCollapse(const core::Mesh& mesh, core::Ent edge, core::Ent remove);

struct CoarsenOptions {
  /// Collapse edges shorter than `ratio` times the local target size.
  double ratio = 0.6;
  int max_passes = 8;
  /// Optional solution transfer invoked per collapse.
  SolutionTransfer* transfer = nullptr;
};

struct CoarsenStats {
  int passes = 0;
  std::size_t collapses = 0;
};

/// Size-field-driven coarsening: repeatedly collapse the shortest
/// under-size edges (preferring to remove the vertex that is free to move
/// along the edge's feature) until all edges conform or nothing is
/// collapsible.
CoarsenStats coarsen(core::Mesh& mesh, const SizeField& size,
                     const CoarsenOptions& opts = {});

}  // namespace adapt

#endif  // PUMI_ADAPT_COLLAPSE_HPP
