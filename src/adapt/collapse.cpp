#include "adapt/collapse.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <unordered_set>
#include <vector>

#include "core/measure.hpp"
#include "gmi/model.hpp"

namespace adapt {

using common::Vec3;
using core::Ent;
using core::EntHash;
using core::Mesh;
using core::Topo;

namespace {

/// Other endpoint of an edge.
Ent otherVertex(const Mesh& mesh, Ent edge, Ent v) {
  const auto vs = mesh.verts(edge);
  return vs[0] == v ? vs[1] : vs[0];
}

bool containsVertex(const Mesh& mesh, Ent e, Ent v) {
  const auto vs = mesh.verts(e);
  return std::find(vs.begin(), vs.end(), v) != vs.end();
}

/// Signed orientation measure of an element given explicit coordinates:
/// signed volume for tets, signed (z-projected onto its own normal) area
/// vector for tris.
double signedTet(const std::array<Vec3, 8>& p) {
  return core::tetVolume(p[0], p[1], p[2], p[3]);
}

/// Geometric validity: the rebuilt element keeps its orientation and does
/// not degenerate.
bool replacementKeepsShape(const Mesh& mesh, Ent elem, Ent remove,
                           const Vec3& target) {
  const auto vs = mesh.verts(elem);
  std::array<Vec3, 8> old_p{}, new_p{};
  for (std::size_t i = 0; i < vs.size(); ++i) {
    old_p[i] = mesh.point(vs[i]);
    new_p[i] = vs[i] == remove ? target : old_p[i];
  }
  if (elem.topo() == Topo::Tet) {
    const double before = signedTet(old_p);
    const double after = signedTet(new_p);
    return before * after > 0.0 && std::fabs(after) > 1e-14;
  }
  if (elem.topo() == Topo::Tri) {
    const Vec3 before =
        common::cross(old_p[1] - old_p[0], old_p[2] - old_p[0]);
    const Vec3 after =
        common::cross(new_p[1] - new_p[0], new_p[2] - new_p[0]);
    return common::dot(before, after) > 0.0 &&
           common::norm(after) > 1e-14;
  }
  return false;  // collapse supports simplex meshes only
}

/// Vertices joined to v by an edge.
std::unordered_set<Ent, EntHash> vertexLink(const Mesh& mesh, Ent v) {
  std::unordered_set<Ent, EntHash> link;
  for (Ent e : mesh.up(v)) link.insert(otherVertex(mesh, e, v));
  return link;
}

}  // namespace

bool canCollapse(const Mesh& mesh, Ent edge, Ent remove) {
  if (!mesh.alive(edge) || edge.topo() != Topo::Edge) return false;
  if (!containsVertex(mesh, edge, remove)) return false;
  const int dim = mesh.dim();
  const Ent keep = otherVertex(mesh, edge, remove);

  // Classification: the removed vertex must slide along the feature the
  // edge lies on (never off a model vertex/edge/face it represents).
  if (mesh.classification(remove) != mesh.classification(edge)) return false;

  // Link condition: every vertex adjacent to both endpoints must belong to
  // a face containing the edge, otherwise the collapse pinches the mesh.
  const auto keep_link = vertexLink(mesh, keep);
  for (Ent e : mesh.up(remove)) {
    const Ent c = otherVertex(mesh, e, remove);
    if (c == keep || !keep_link.count(c)) continue;
    std::array<Ent, 3> tri{mesh.verts(edge)[0], mesh.verts(edge)[1], c};
    if (!mesh.findEntity(Topo::Tri, tri)) return false;
  }

  const Vec3 target = mesh.point(keep);
  core::AdjVec star;
  const int nstar = mesh.adjacentInto(remove, dim, star);
  for (int si = 0; si < nstar; ++si) {
    const Ent elem = star[static_cast<std::size_t>(si)];
    if (containsVertex(mesh, elem, keep)) continue;  // dies with the edge
    if (elem.topo() != Topo::Tet && elem.topo() != Topo::Tri) return false;
    if (!replacementKeepsShape(mesh, elem, remove, target)) return false;
    // The rebuilt element must not already exist.
    std::array<Ent, 8> nv{};
    const auto vs = mesh.verts(elem);
    for (std::size_t i = 0; i < vs.size(); ++i)
      nv[i] = vs[i] == remove ? keep : vs[i];
    if (mesh.findEntity(elem.topo(), {nv.data(), vs.size()})) return false;
  }
  return true;
}

bool collapseEdge(Mesh& mesh, Ent edge, Ent remove,
                  SolutionTransfer* transfer) {
  if (!canCollapse(mesh, edge, remove)) return false;
  const int dim = mesh.dim();
  const Ent keep = otherVertex(mesh, edge, remove);
  if (transfer != nullptr) transfer->onCollapse(mesh, keep, remove);

  struct Spec {
    Topo topo;
    std::array<Ent, 8> verts{};
    std::size_t nv = 0;
    gmi::Entity* cls = nullptr;
    Ent old;
  };

  // Elements to rebuild (contain remove but not keep) and to garbage
  // collect (everything adjacent to remove).
  std::vector<Spec> rebuilds;
  std::vector<Ent> gc_elems;
  core::AdjVec star;
  const int nstar = mesh.adjacentInto(remove, dim, star);
  for (int si = 0; si < nstar; ++si) {
    const Ent elem = star[static_cast<std::size_t>(si)];
    gc_elems.push_back(elem);
    if (containsVertex(mesh, elem, keep)) continue;
    Spec s;
    s.topo = elem.topo();
    const auto vs = mesh.verts(elem);
    s.nv = vs.size();
    for (std::size_t i = 0; i < vs.size(); ++i)
      s.verts[i] = vs[i] == remove ? keep : vs[i];
    s.cls = mesh.classification(elem);
    s.old = elem;
    rebuilds.push_back(s);
  }

  // Lower-dimension entities adjacent to `remove` whose substituted
  // counterpart does not exist yet: they will be created as intermediates
  // of the rebuilds, then need the old classification and tags.
  std::vector<Spec> lower_fixes;
  std::vector<std::vector<Ent>> gc_lower(static_cast<std::size_t>(dim));
  for (int d = 1; d < dim; ++d) {
    const int nl = mesh.adjacentInto(remove, d, star);
    for (int li = 0; li < nl; ++li) {
      const Ent e = star[static_cast<std::size_t>(li)];
      gc_lower[static_cast<std::size_t>(d)].push_back(e);
      if (containsVertex(mesh, e, keep)) continue;
      Spec s;
      s.topo = e.topo();
      const auto vs = mesh.verts(e);
      s.nv = vs.size();
      for (std::size_t i = 0; i < vs.size(); ++i)
        s.verts[i] = vs[i] == remove ? keep : vs[i];
      if (mesh.findEntity(s.topo, {s.verts.data(), s.nv})) continue;
      s.cls = mesh.classification(e);
      s.old = e;
      lower_fixes.push_back(s);
    }
  }

  // 1. Create the rebuilt elements (intermediates auto-created) and carry
  //    element tags over.
  for (const Spec& s : rebuilds) {
    const Ent fresh =
        mesh.buildElement(s.topo, {s.verts.data(), s.nv}, s.cls);
    mesh.tags().copyAll(s.old, fresh);
  }
  // 2. Fix classification/tags of freshly created lower entities.
  for (const Spec& s : lower_fixes) {
    const Ent fresh = mesh.findEntity(s.topo, {s.verts.data(), s.nv});
    assert(fresh && "substituted entity must exist after rebuild");
    mesh.classify(fresh, s.cls);
    mesh.tags().copyAll(s.old, fresh);
  }
  // 3. Delete the old cavity, dimension-descending.
  for (Ent elem : gc_elems) mesh.destroy(elem);
  for (int d = dim - 1; d >= 1; --d)
    for (Ent e : gc_lower[static_cast<std::size_t>(d)]) mesh.destroy(e);
  mesh.destroy(remove);
  return true;
}

CoarsenStats coarsen(Mesh& mesh, const SizeField& size,
                     const CoarsenOptions& opts) {
  CoarsenStats stats;
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    std::vector<std::pair<double, Ent>> marked;
    for (Ent e : mesh.entities(1)) {
      const auto vs = mesh.verts(e);
      const Vec3 mid = (mesh.point(vs[0]) + mesh.point(vs[1])) * 0.5;
      const double len = core::measure(mesh, e);
      if (len < opts.ratio * size.value(mid)) marked.emplace_back(len, e);
    }
    if (marked.empty()) break;
    std::sort(marked.begin(), marked.end());
    std::size_t done = 0;
    for (const auto& [len, e] : marked) {
      (void)len;
      if (!mesh.alive(e)) continue;
      // Prefer removing the endpoint classified like the edge (free to
      // slide); try the other endpoint as a fallback.
      const auto vs = mesh.verts(e);
      const Ent a = vs[0], b = vs[1];
      const Ent first =
          mesh.classification(b) == mesh.classification(e) ? b : a;
      const Ent second = first == a ? b : a;
      if (collapseEdge(mesh, e, first, opts.transfer) ||
          collapseEdge(mesh, e, second, opts.transfer))
        ++done;
    }
    if (done == 0) break;
    stats.passes = pass + 1;
    stats.collapses += done;
  }
  return stats;
}

}  // namespace adapt
