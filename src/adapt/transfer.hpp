#ifndef PUMI_ADAPT_TRANSFER_HPP
#define PUMI_ADAPT_TRANSFER_HPP

/// \file transfer.hpp
/// \brief Solution transfer during mesh modification (a core FASTMath
/// capability the infrastructure exists to support: fields must survive
/// adaptation).
///
/// A SolutionTransfer observes the primitive cavity operations; refine()
/// and coarsen() invoke it so solver state stays consistent:
///   - onSplit: a new vertex appeared on edge (a, b),
///   - onCollapse: vertex `removed` is about to merge onto `kept`.
/// LinearTransfer interpolates every vertex-located scalar/vector/matrix
/// field linearly (midpoint average on split; no-op on collapse, the kept
/// vertex keeps its value — the linear interpolant's trace).

#include <string>
#include <vector>

#include "core/mesh.hpp"

namespace adapt {

class SolutionTransfer {
 public:
  virtual ~SolutionTransfer() = default;
  /// `mid` was created splitting edge (a, b).
  virtual void onSplit(core::Mesh& mesh, core::Ent mid, core::Ent a,
                       core::Ent b) = 0;
  /// `removed` is about to be collapsed onto `kept` (both still alive).
  virtual void onCollapse(core::Mesh& mesh, core::Ent kept,
                          core::Ent removed) = 0;
};

/// Interpolates all vertex-located fields ("field:*" double tags) linearly.
class LinearTransfer final : public SolutionTransfer {
 public:
  /// Transfer every field; or only the named ones when `fields` given.
  explicit LinearTransfer(std::vector<std::string> fields = {});
  void onSplit(core::Mesh& mesh, core::Ent mid, core::Ent a,
               core::Ent b) override;
  void onCollapse(core::Mesh& mesh, core::Ent kept,
                  core::Ent removed) override;

 private:
  [[nodiscard]] bool wants(const std::string& tag_name) const;
  std::vector<std::string> fields_;
};

}  // namespace adapt

#endif  // PUMI_ADAPT_TRANSFER_HPP
