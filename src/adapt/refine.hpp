#ifndef PUMI_ADAPT_REFINE_HPP
#define PUMI_ADAPT_REFINE_HPP

/// \file refine.hpp
/// \brief Size-field-driven isotropic refinement by edge splitting.

#include "adapt/sizefield.hpp"
#include "adapt/transfer.hpp"
#include "core/mesh.hpp"

namespace adapt {

struct RefineOptions {
  /// Split an edge when its length exceeds `ratio` times the size-field
  /// value at its midpoint. 1.5 balances convergence and over-refinement.
  double ratio = 1.5;
  /// Safety bound on refinement sweeps.
  int max_passes = 12;
  /// Hard cap on created vertices (0 = unlimited); guards runaway size
  /// fields in tests.
  std::size_t max_splits = 0;
  /// Optional solution transfer invoked per split.
  SolutionTransfer* transfer = nullptr;
};

struct RefineStats {
  int passes = 0;
  std::size_t splits = 0;
};

/// Repeatedly split, longest edges first, every edge longer than the local
/// target size until all edges conform (or limits are hit). Works on
/// all-tri and all-tet meshes; boundary vertices snap to the model.
RefineStats refine(core::Mesh& mesh, const SizeField& size,
                   const RefineOptions& opts = {});

/// Predicted number of elements one element becomes if refined to satisfy
/// `size` exactly: (current size / target size)^dim, floored at 1.
double predictedElements(const core::Mesh& mesh, core::Ent elem,
                         const SizeField& size);

/// Predicted element count if `mesh` were refined to satisfy `size`
/// exactly: sum of predictedElements over elements. Used for predictive
/// load balancing ahead of adaptation (paper Sec. III-B).
double estimateElements(const core::Mesh& mesh, const SizeField& size);

}  // namespace adapt

#endif  // PUMI_ADAPT_REFINE_HPP
