#ifndef PUMI_ADAPT_SWAP_HPP
#define PUMI_ADAPT_SWAP_HPP

/// \file swap.hpp
/// \brief Edge swapping (2D): the local reconnection operation of mesh
/// optimization. Together with split, collapse and vertex smoothing this
/// completes the modification toolkit of an adaptive workflow (split and
/// collapse change resolution; swaps and smoothing improve quality at
/// fixed resolution).
///
/// Flipping interior edge (a, b) shared by triangles (a, b, c) and
/// (b, a, d) replaces them by (c, d, a) and (d, c, b). The flip is refused
/// when the quad (a, c, b, d) is non-convex (the flipped triangles would
/// invert) or when the edge is on a geometric or part boundary.
/// Tetrahedral swaps (3-2, 2-3) are out of scope here; 3D quality is
/// handled by smoothing (adapt/quality.hpp).

#include "adapt/transfer.hpp"
#include "core/mesh.hpp"

namespace adapt {

/// True when the flip passes all validity checks (2D interior edge,
/// exactly two triangles, convex quad, flipped edge absent).
bool canFlip(const core::Mesh& mesh, core::Ent edge);

/// Flip the edge; returns false (mesh untouched) if invalid.
bool flipEdge(core::Mesh& mesh, core::Ent edge);

struct SwapStats {
  int passes = 0;
  std::size_t flips = 0;
};

/// Delaunay-style quality pass: flip every edge whose flip increases the
/// minimum mean-ratio quality of its two triangles; repeat until no flip
/// helps.
SwapStats swapToImproveQuality(core::Mesh& mesh, int max_passes = 10);

}  // namespace adapt

#endif  // PUMI_ADAPT_SWAP_HPP
