#include "adapt/metric.hpp"

#include <algorithm>
#include <cmath>

#include "adapt/split.hpp"
#include "core/measure.hpp"

namespace adapt {

using common::Mat3;
using common::Vec3;
using core::Ent;

Mat3 stretchMetric(const Vec3& dir, double h_along, double h_across) {
  const Vec3 d = common::normalized(dir);
  // M = d d^T / h_along^2 + (I - d d^T) / h_across^2.
  const Mat3 along = Mat3::outer(d, d);
  Mat3 across = Mat3::identity();
  across += along * -1.0;
  Mat3 m = along * (1.0 / (h_along * h_along));
  m += across * (1.0 / (h_across * h_across));
  return m;
}

Mat3 metricFromHessian(const Mat3& hessian, double err, double h_min,
                       double h_max) {
  const auto eig = common::symmetricEigen(hessian);
  Mat3 m = Mat3::zero();
  for (int i = 0; i < 3; ++i) {
    // Directional size from the interpolation-error bound h^2 |lambda| <= err.
    const double lambda = std::fabs(eig.values[static_cast<std::size_t>(i)]);
    double h = lambda > 0.0 ? std::sqrt(err / lambda) : h_max;
    h = std::clamp(h, h_min, h_max);
    m += Mat3::outer(eig.vectors[static_cast<std::size_t>(i)],
                     eig.vectors[static_cast<std::size_t>(i)]) *
         (1.0 / (h * h));
  }
  return m;
}

double metricEdgeLength(const core::Mesh& mesh, Ent edge,
                        const MetricField& metric) {
  const auto vs = mesh.verts(edge);
  const Vec3 a = mesh.point(vs[0]);
  const Vec3 b = mesh.point(vs[1]);
  const Vec3 e = b - a;
  const Mat3 m = metric.metric((a + b) * 0.5);
  return std::sqrt(std::max(0.0, common::dot(e, m * e)));
}

RefineStats refineMetric(core::Mesh& mesh, const MetricField& metric,
                         const MetricRefineOptions& opts) {
  RefineStats stats;
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    std::vector<std::pair<double, Ent>> marked;
    for (Ent e : mesh.entities(1)) {
      const double len = metricEdgeLength(mesh, e, metric);
      if (len > opts.ratio) marked.emplace_back(len, e);
    }
    if (marked.empty()) break;
    std::sort(marked.begin(), marked.end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
    stats.passes = pass + 1;
    for (const auto& [len, e] : marked) {
      (void)len;
      if (!mesh.alive(e)) continue;
      splitEdge(mesh, e, opts.transfer);
      ++stats.splits;
      if (opts.max_splits > 0 && stats.splits >= opts.max_splits)
        return stats;
    }
  }
  return stats;
}

}  // namespace adapt
