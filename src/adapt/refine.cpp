#include "adapt/refine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "adapt/split.hpp"
#include "core/measure.hpp"

namespace adapt {

using core::Ent;

RefineStats refine(core::Mesh& mesh, const SizeField& size,
                   const RefineOptions& opts) {
  RefineStats stats;
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    // Gather over-long edges, longest first so the worst offenders split
    // before their neighbourhood churns.
    std::vector<std::pair<double, Ent>> marked;
    for (Ent e : mesh.entities(1)) {
      const auto vs = mesh.verts(e);
      const common::Vec3 midpoint =
          (mesh.point(vs[0]) + mesh.point(vs[1])) * 0.5;
      const double len = core::measure(mesh, e);
      if (len > opts.ratio * size.value(midpoint)) marked.emplace_back(len, e);
    }
    if (marked.empty()) break;
    std::sort(marked.begin(), marked.end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
    stats.passes = pass + 1;
    for (const auto& [len, e] : marked) {
      (void)len;
      if (!mesh.alive(e)) continue;  // consumed by a neighbouring split
      splitEdge(mesh, e, opts.transfer);
      ++stats.splits;
      if (opts.max_splits > 0 && stats.splits >= opts.max_splits)
        return stats;
    }
  }
  return stats;
}

double predictedElements(const core::Mesh& mesh, core::Ent elem,
                         const SizeField& size) {
  const int dim = core::topoDim(elem.topo());
  // Current characteristic size: mean edge length.
  std::array<Ent, core::kMaxDown> buf{};
  const int ne = mesh.downward(elem, 1, buf.data());
  double h = 0.0;
  for (int i = 0; i < ne; ++i)
    h += core::measure(mesh, buf[static_cast<std::size_t>(i)]);
  h /= ne;
  const double target = size.value(core::centroid(mesh, elem));
  return std::max(1.0, std::pow(h / target, dim));
}

double estimateElements(const core::Mesh& mesh, const SizeField& size) {
  double total = 0.0;
  for (Ent elem : mesh.entities(mesh.dim()))
    total += predictedElements(mesh, elem, size);
  return total;
}

}  // namespace adapt
