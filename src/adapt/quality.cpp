#include "adapt/quality.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/measure.hpp"
#include "gmi/model.hpp"

namespace adapt {

using common::Vec3;
using core::Ent;
using core::Topo;

double quality(const core::Mesh& mesh, Ent elem) {
  std::array<Ent, core::kMaxDown> buf{};
  const int ne = mesh.downward(elem, 1, buf.data());
  double sum_sq = 0.0;
  for (int i = 0; i < ne; ++i) {
    const double l = core::measure(mesh, buf[static_cast<std::size_t>(i)]);
    sum_sq += l * l;
  }
  if (sum_sq <= 0.0) return 0.0;
  if (elem.topo() == Topo::Tet) {
    const double v = core::measure(mesh, elem);
    return std::clamp(12.0 * std::pow(3.0 * v, 2.0 / 3.0) / sum_sq, 0.0, 1.0);
  }
  if (elem.topo() == Topo::Tri) {
    const double a = core::measure(mesh, elem);
    return std::clamp(4.0 * std::sqrt(3.0) * a / sum_sq, 0.0, 1.0);
  }
  return 0.0;  // quality defined for simplices
}

QualityStats meshQuality(const core::Mesh& mesh) {
  QualityStats s;
  std::size_t n = 0;
  double sum = 0.0;
  for (Ent e : mesh.entities(mesh.dim())) {
    const double q = quality(mesh, e);
    s.min = std::min(s.min, q);
    sum += q;
    if (q < 0.3) ++s.below_03;
    ++n;
  }
  s.mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
  return s;
}

SmoothStats smooth(core::Mesh& mesh, const SmoothOptions& opts) {
  SmoothStats stats;
  const int dim = mesh.dim();
  for (int pass = 0; pass < opts.passes; ++pass) {
    for (Ent v : mesh.entities(0)) {
      gmi::Entity* cls = mesh.classification(v);
      if (cls == nullptr || cls->dim() < dim) continue;  // boundary fixed
      if (opts.skip && opts.skip(v)) continue;
      // Centroid of edge neighbours.
      Vec3 target{};
      int n = 0;
      for (Ent e : mesh.up(v)) {
        const auto vs = mesh.verts(e);
        target += mesh.point(vs[0] == v ? vs[1] : vs[0]);
        ++n;
      }
      if (n == 0) continue;
      target /= static_cast<double>(n);
      const Vec3 old = mesh.point(v);
      const Vec3 proposal = old + (target - old) * opts.relaxation;

      // Quality guard: the move must not lower the cavity's worst quality.
      const auto cavity = mesh.adjacentSpan(v, dim);
      double worst_before = 1.0;
      for (Ent e : cavity) worst_before = std::min(worst_before, quality(mesh, e));
      mesh.setPoint(v, proposal);
      double worst_after = 1.0;
      for (Ent e : cavity) worst_after = std::min(worst_after, quality(mesh, e));
      // Volume sign must also survive (quality alone is unsigned).
      bool inverted = false;
      for (Ent e : cavity)
        if (core::measure(mesh, e) <= 0.0) inverted = true;
      if (worst_after + 1e-15 < worst_before || inverted) {
        mesh.setPoint(v, old);
        ++stats.rejected;
      } else {
        ++stats.moved;
      }
    }
  }
  return stats;
}

}  // namespace adapt
