#ifndef PUMI_ADAPT_SIZEFIELD_HPP
#define PUMI_ADAPT_SIZEFIELD_HPP

/// \file sizefield.hpp
/// \brief Size fields: the desired local edge length over the domain.
///
/// Adaptive simulations drive mesh modification from a size field, often
/// derived from an error estimate (the paper's ONERA M6 case computes it
/// from the Hessian of the Mach number around a shock front). We provide
/// analytic size fields, including a planar shock-front field reproducing
/// the localized-refinement pattern behind Fig. 13.

#include <functional>
#include <utility>

#include "common/vec.hpp"

namespace adapt {

using common::Vec3;

/// Desired isotropic edge length as a function of position.
class SizeField {
 public:
  virtual ~SizeField() = default;
  [[nodiscard]] virtual double value(const Vec3& x) const = 0;
};

/// Constant target size everywhere (uniform refinement driver).
class UniformSize final : public SizeField {
 public:
  explicit UniformSize(double h) : h_(h) {}
  [[nodiscard]] double value(const Vec3&) const override { return h_; }

 private:
  double h_;
};

/// Arbitrary analytic size function.
class AnalyticSize final : public SizeField {
 public:
  explicit AnalyticSize(std::function<double(const Vec3&)> f)
      : f_(std::move(f)) {}
  [[nodiscard]] double value(const Vec3& x) const override { return f_(x); }

 private:
  std::function<double(const Vec3&)> f_;
};

/// Planar shock front: fine size h_fine inside a band of half-width `width`
/// around the plane through `point` with unit normal `normal`, blending
/// smoothly (gaussian) to h_coarse away from it. An oblique normal models
/// the swept shock over a wing.
class ShockFrontSize final : public SizeField {
 public:
  ShockFrontSize(const Vec3& point, const Vec3& normal, double width,
                 double h_fine, double h_coarse)
      : point_(point), normal_(common::normalized(normal)), width_(width),
        h_fine_(h_fine), h_coarse_(h_coarse) {}

  [[nodiscard]] double value(const Vec3& x) const override {
    const double d = common::dot(x - point_, normal_) / width_;
    const double blend = std::exp(-d * d);
    return h_coarse_ + (h_fine_ - h_coarse_) * blend;
  }

 private:
  Vec3 point_;
  Vec3 normal_;
  double width_;
  double h_fine_;
  double h_coarse_;
};

}  // namespace adapt

#endif  // PUMI_ADAPT_SIZEFIELD_HPP
