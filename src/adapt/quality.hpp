#ifndef PUMI_ADAPT_QUALITY_HPP
#define PUMI_ADAPT_QUALITY_HPP

/// \file quality.hpp
/// \brief Element shape quality and mesh optimization (vertex smoothing) —
/// the "mesh optimization" capability of the FASTMath effort the paper
/// belongs to.
///
/// Quality is the mean-ratio measure normalized to [0, 1]: 1 for the
/// equilateral simplex, 0 for a degenerate one. Smoothing moves interior
/// vertices toward the centroid of their edge neighbours, accepting a move
/// only if it does not lower the worst quality of the surrounding cavity
/// ("smart" Laplacian smoothing), so inverted elements can never appear.

#include <functional>

#include "core/mesh.hpp"

namespace adapt {

/// Mean-ratio quality of a simplex element in [0, 1].
/// Tets: 12 * (3 V)^(2/3) / sum of squared edge lengths.
/// Tris:  4 * sqrt(3) * A / sum of squared edge lengths.
double quality(const core::Mesh& mesh, core::Ent elem);

struct QualityStats {
  double min = 1.0;
  double mean = 0.0;
  std::size_t below_03 = 0;  ///< sliver count (quality < 0.3)
};

/// Quality over all elements.
QualityStats meshQuality(const core::Mesh& mesh);

struct SmoothOptions {
  int passes = 3;
  /// Under-relaxation toward the neighbour centroid.
  double relaxation = 0.5;
  /// Extra vertices to hold fixed (e.g. part-boundary vertices when
  /// smoothing one part of a distributed mesh).
  std::function<bool(core::Ent)> skip;
};

struct SmoothStats {
  std::size_t moved = 0;
  std::size_t rejected = 0;  ///< moves refused by the quality guard
};

/// Smart Laplacian smoothing of vertices classified on the model interior.
SmoothStats smooth(core::Mesh& mesh, const SmoothOptions& opts = {});

}  // namespace adapt

#endif  // PUMI_ADAPT_QUALITY_HPP
