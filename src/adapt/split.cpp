#include "adapt/split.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "gmi/model.hpp"

namespace adapt {

using core::Ent;
using core::Mesh;
using core::Topo;
using common::Vec3;

namespace {

/// Saved description of an entity about to be replaced.
struct Saved {
  Ent ent;
  std::array<Ent, 4> verts{};
  int nverts = 0;
  gmi::Entity* cls = nullptr;
};

Saved save(const Mesh& m, Ent e) {
  Saved s;
  s.ent = e;
  const auto vs = m.verts(e);
  s.nverts = static_cast<int>(vs.size());
  std::copy(vs.begin(), vs.end(), s.verts.begin());
  s.cls = m.classification(e);
  return s;
}

}  // namespace

Ent splitEdge(Mesh& mesh, Ent edge, SolutionTransfer* transfer) {
  assert(mesh.alive(edge));
  const auto evs = mesh.verts(edge);
  // Midpoint, snapped onto the classified model shape so refinement tracks
  // curved geometry.
  Vec3 mid = (mesh.point(evs[0]) + mesh.point(evs[1])) * 0.5;
  if (gmi::Entity* ecls = mesh.classification(edge)) mid = ecls->snap(mid);
  return splitEdgeAt(mesh, edge, mid, transfer);
}

Ent splitEdgeAt(Mesh& mesh, Ent edge, const Vec3& position,
                SolutionTransfer* transfer) {
  assert(edge.topo() == Topo::Edge && mesh.alive(edge));
  const int dim = mesh.dim();
  const auto evs = mesh.verts(edge);
  const Ent a = evs[0];
  const Ent b = evs[1];
  gmi::Entity* ecls = mesh.classification(edge);
  const Ent m = mesh.createVertex(position, ecls);
  if (transfer != nullptr) transfer->onSplit(mesh, m, a, b);

  // Collect the adjacent faces (3D) and elements.
  std::vector<Saved> faces;
  std::vector<Saved> elems;
  if (dim == 3) {
    for (Ent f : mesh.up(edge)) {
      if (f.topo() != Topo::Tri)
        throw std::invalid_argument("splitEdge: only tri/tet meshes");
      faces.push_back(save(mesh, f));
    }
    std::vector<Ent> regions;
    for (Ent f : mesh.up(edge))
      for (Ent r : mesh.up(f))
        if (std::find(regions.begin(), regions.end(), r) == regions.end())
          regions.push_back(r);
    for (Ent r : regions) {
      if (r.topo() != Topo::Tet)
        throw std::invalid_argument("splitEdge: only tri/tet meshes");
      elems.push_back(save(mesh, r));
    }
  } else {
    for (Ent f : mesh.up(edge)) {
      if (f.topo() != Topo::Tri)
        throw std::invalid_argument("splitEdge: only tri/tet meshes");
      elems.push_back(save(mesh, f));
    }
  }

  // Replace each element by two children (the split vertex substituted for
  // each endpoint in turn); element tags flow to both children.
  const Topo elem_topo = dim == 3 ? Topo::Tet : Topo::Tri;
  for (const Saved& s : elems) {
    std::array<Ent, 4> child{};
    std::copy(s.verts.begin(), s.verts.end(), child.begin());
    const auto span = std::span<const Ent>{
        child.data(), static_cast<std::size_t>(s.nverts)};
    for (Ent replace : {a, b}) {
      for (int i = 0; i < s.nverts; ++i)
        child[static_cast<std::size_t>(i)] =
            s.verts[static_cast<std::size_t>(i)] == replace
                ? m
                : s.verts[static_cast<std::size_t>(i)];
      const Ent c = mesh.buildElement(elem_topo, span, s.cls);
      mesh.tags().copyAll(s.ent, c);
    }
    mesh.destroy(s.ent);
  }

  if (dim == 3) {
    // Fix classification of the split halves of each old face and of the
    // new edge interior to it (auto-created with the region classification).
    for (const Saved& s : faces) {
      // The third vertex of the (a, b, x) face.
      Ent x;
      for (int i = 0; i < s.nverts; ++i) {
        const Ent v = s.verts[static_cast<std::size_t>(i)];
        if (v != a && v != b) x = v;
      }
      for (Ent endpoint : {a, b}) {
        const Ent half =
            mesh.findEntity(Topo::Tri, std::array{endpoint, m, x});
        assert(half);
        mesh.classify(half, s.cls);
        mesh.tags().copyAll(s.ent, half);
      }
      const Ent mx = mesh.findEntity(Topo::Edge, std::array{m, x});
      assert(mx);
      mesh.classify(mx, s.cls);
      // Old face is no longer bounded by anything: remove it.
      mesh.destroy(s.ent);
    }
  }

  // Sub-edges (a,m) and (m,b) carry the old edge's classification and tags.
  for (Ent endpoint : {a, b}) {
    const Ent half = mesh.findEntity(Topo::Edge, std::array{endpoint, m});
    assert(half);
    mesh.classify(half, ecls);
    mesh.tags().copyAll(edge, half);
  }
  mesh.destroy(edge);
  return m;
}

}  // namespace adapt
