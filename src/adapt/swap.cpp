#include "adapt/swap.hpp"

#include <algorithm>
#include <array>

#include "adapt/quality.hpp"
#include "core/measure.hpp"
#include "gmi/model.hpp"

namespace adapt {

using common::Vec3;
using core::Ent;
using core::Mesh;
using core::Topo;

namespace {

/// The two triangles of an interior 2D edge, plus the opposite vertices.
struct FlipSetup {
  Ent t0, t1;       // triangles
  Ent a, b;         // edge endpoints
  Ent c, d;         // opposite vertices (c in t0, d in t1)
  bool valid = false;
};

FlipSetup analyze(const Mesh& mesh, Ent edge) {
  FlipSetup s;
  if (edge.topo() != Topo::Edge || !mesh.alive(edge)) return s;
  const auto& up = mesh.up(edge);
  if (up.size() != 2) return s;
  if (up[0].topo() != Topo::Tri || up[1].topo() != Topo::Tri) return s;
  s.t0 = up[0];
  s.t1 = up[1];
  const auto evs = mesh.verts(edge);
  s.a = evs[0];
  s.b = evs[1];
  auto opposite = [&](Ent tri) -> Ent {
    for (Ent v : mesh.verts(tri))
      if (v != s.a && v != s.b) return v;
    return {};
  };
  s.c = opposite(s.t0);
  s.d = opposite(s.t1);
  if (!s.c || !s.d || s.c == s.d) return s;
  s.valid = true;
  return s;
}

double signedArea2(const Mesh& mesh, Ent v0, Ent v1, Ent v2,
                   const Vec3& up_normal) {
  const Vec3 p0 = mesh.point(v0);
  return common::dot(common::cross(mesh.point(v1) - p0, mesh.point(v2) - p0),
                     up_normal);
}

}  // namespace

bool canFlip(const Mesh& mesh, Ent edge) {
  const FlipSetup s = analyze(mesh, edge);
  if (!s.valid) return false;
  // Only swap edges interior to one model face (not on geometry edges).
  gmi::Entity* cls = mesh.classification(edge);
  if (cls == nullptr || cls->dim() != 2) return false;
  // The flipped edge must not already exist.
  if (mesh.findEntity(Topo::Edge, std::array{s.c, s.d})) return false;
  // Strict convexity, orientation-free: the two diagonals of the quad
  // (a,b) and (c,d) must properly cross — c and d on opposite sides of
  // line (a,b), and a and b on opposite sides of line (c,d).
  const auto t0v = mesh.verts(s.t0);
  const Vec3 p0 = mesh.point(t0v[0]);
  const Vec3 normal = common::cross(mesh.point(t0v[1]) - p0,
                                    mesh.point(t0v[2]) - p0);
  const double c_side = signedArea2(mesh, s.a, s.b, s.c, normal);
  const double d_side = signedArea2(mesh, s.a, s.b, s.d, normal);
  const double a_side = signedArea2(mesh, s.c, s.d, s.a, normal);
  const double b_side = signedArea2(mesh, s.c, s.d, s.b, normal);
  return c_side * d_side < -1e-14 && a_side * b_side < -1e-14;
}

bool flipEdge(Mesh& mesh, Ent edge) {
  if (!canFlip(mesh, edge)) return false;
  const FlipSetup s = analyze(mesh, edge);
  gmi::Entity* cls0 = mesh.classification(s.t0);
  gmi::Entity* cls1 = mesh.classification(s.t1);
  gmi::Entity* ecls = mesh.classification(edge);

  // Build replacements, carry tags, then delete the old pair.
  const Ent n0 = mesh.buildElement(Topo::Tri, std::array{s.c, s.d, s.a}, cls0);
  mesh.tags().copyAll(s.t0, n0);
  const Ent n1 = mesh.buildElement(Topo::Tri, std::array{s.d, s.c, s.b}, cls1);
  mesh.tags().copyAll(s.t1, n1);
  // The new diagonal edge lies interior to the same model face.
  const Ent diag = mesh.findEntity(Topo::Edge, std::array{s.c, s.d});
  mesh.classify(diag, ecls);
  mesh.destroy(s.t0);
  mesh.destroy(s.t1);
  mesh.destroy(edge);
  return true;
}

SwapStats swapToImproveQuality(Mesh& mesh, int max_passes) {
  SwapStats stats;
  for (int pass = 0; pass < max_passes; ++pass) {
    std::size_t flips = 0;
    for (Ent e : mesh.all(1)) {
      if (!mesh.alive(e)) continue;
      const FlipSetup s = analyze(mesh, e);
      if (!s.valid || !canFlip(mesh, e)) continue;
      const double before =
          std::min(quality(mesh, s.t0), quality(mesh, s.t1));
      // Evaluate the flipped pair's quality on scratch triangles is not
      // possible without creating them; compute from coordinates directly.
      auto triQuality = [&](Ent v0, Ent v1, Ent v2) {
        const Vec3 p0 = mesh.point(v0), p1 = mesh.point(v1),
                   p2 = mesh.point(v2);
        const double area =
            0.5 * common::norm(common::cross(p1 - p0, p2 - p0));
        const double l2 = common::norm2(p1 - p0) + common::norm2(p2 - p1) +
                          common::norm2(p0 - p2);
        return l2 > 0.0 ? 4.0 * std::sqrt(3.0) * area / l2 : 0.0;
      };
      const double after = std::min(triQuality(s.c, s.d, s.a),
                                    triQuality(s.d, s.c, s.b));
      if (after > before + 1e-12 && flipEdge(mesh, e)) ++flips;
    }
    if (flips == 0) break;
    stats.passes = pass + 1;
    stats.flips += flips;
  }
  return stats;
}

}  // namespace adapt
