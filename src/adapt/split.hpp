#ifndef PUMI_ADAPT_SPLIT_HPP
#define PUMI_ADAPT_SPLIT_HPP

/// \file split.hpp
/// \brief Conforming edge split, the primitive mesh-modification operation
/// behind isotropic refinement.
///
/// Splitting an edge replaces every element (and face, in 3D) adjacent to
/// it by two children sharing the new midpoint vertex; because all adjacent
/// entities split together, the mesh stays conforming with no propagation.
/// The midpoint vertex inherits the edge's geometric classification and is
/// snapped onto the model shape (curved boundaries stay curved under
/// refinement). Element tags are copied to both children, which is how
/// part-provenance is tracked through adaptation in the Fig. 13 experiment.
///
/// Supported meshes: all-tri (2D) and all-tet (3D).

#include "adapt/transfer.hpp"
#include "core/mesh.hpp"

namespace adapt {

/// Split `edge` at its (snapped) midpoint. Returns the new midpoint vertex.
/// When a transfer is given, it is invoked for the new vertex while both
/// endpoints are alive.
core::Ent splitEdge(core::Mesh& mesh, core::Ent edge,
                    SolutionTransfer* transfer = nullptr);

/// Split `edge` at an explicitly given position (no snapping): distributed
/// refinement computes the position once on the owning part and forces the
/// identical coordinates onto every copy.
core::Ent splitEdgeAt(core::Mesh& mesh, core::Ent edge,
                      const common::Vec3& position,
                      SolutionTransfer* transfer = nullptr);

}  // namespace adapt

#endif  // PUMI_ADAPT_SPLIT_HPP
