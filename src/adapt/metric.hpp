#ifndef PUMI_ADAPT_METRIC_HPP
#define PUMI_ADAPT_METRIC_HPP

/// \file metric.hpp
/// \brief Anisotropic metric fields (paper ref. [15], Alauzet et al.:
/// "Parallel anisotropic 3D mesh adaptation by mesh modification"; the
/// Fig. 13 size field "computed from the hessian of the mach number" is
/// the isotropic trace of this machinery).
///
/// A metric M(x) is a symmetric positive-definite tensor defining a local
/// inner product; the length of edge e is sqrt(e^T M e) and the target is
/// unit length in metric space. An isotropic size field h(x) is the
/// special case M = I / h^2.

#include <functional>

#include "common/mat.hpp"
#include "core/mesh.hpp"

#include "adapt/sizefield.hpp"
#include "adapt/refine.hpp"
#include "adapt/transfer.hpp"

namespace adapt {

/// Symmetric positive-definite metric tensor per point.
class MetricField {
 public:
  virtual ~MetricField() = default;
  [[nodiscard]] virtual common::Mat3 metric(const common::Vec3& x) const = 0;
};

/// M = I / h(x)^2 — the isotropic embedding of a size field.
class IsoMetric final : public MetricField {
 public:
  explicit IsoMetric(const SizeField& size) : size_(size) {}
  [[nodiscard]] common::Mat3 metric(const common::Vec3& x) const override {
    const double h = size_.value(x);
    return common::Mat3::identity() * (1.0 / (h * h));
  }

 private:
  const SizeField& size_;
};

/// Arbitrary analytic metric.
class AnalyticMetric final : public MetricField {
 public:
  explicit AnalyticMetric(
      std::function<common::Mat3(const common::Vec3&)> f)
      : f_(std::move(f)) {}
  [[nodiscard]] common::Mat3 metric(const common::Vec3& x) const override {
    return f_(x);
  }

 private:
  std::function<common::Mat3(const common::Vec3&)> f_;
};

/// Build a metric whose directional sizes follow a stretch: unit target
/// length h_along in direction `dir`, h_across orthogonally (boundary
/// layers, shock normals).
common::Mat3 stretchMetric(const common::Vec3& dir, double h_along,
                           double h_across);

/// The classical Hessian metric: M = Q diag(clamp(|lambda_i| / err)) Q^T
/// with directional sizes clamped to [h_min, h_max]. Controls the
/// interpolation error of the underlying field to `err`.
common::Mat3 metricFromHessian(const common::Mat3& hessian, double err,
                               double h_min, double h_max);

/// Edge length in metric space, with the metric evaluated at the midpoint.
double metricEdgeLength(const core::Mesh& mesh, core::Ent edge,
                        const MetricField& metric);

struct MetricRefineOptions {
  /// Split an edge when its metric length exceeds `ratio` (unit target).
  double ratio = 1.5;
  int max_passes = 12;
  std::size_t max_splits = 0;
  SolutionTransfer* transfer = nullptr;
};

/// Metric-driven refinement: split, longest-in-metric first, every edge
/// above the ratio. Edge splitting alone cannot rotate element
/// orientations (no swaps), but it concentrates resolution along the
/// metric's strong directions.
RefineStats refineMetric(core::Mesh& mesh, const MetricField& metric,
                         const MetricRefineOptions& opts = {});

}  // namespace adapt

#endif  // PUMI_ADAPT_METRIC_HPP
